// MaintenanceThread: background purge/global rebuilds off the updating
// thread (DESIGN.md §11).
//
// The inline rebuild path charges a full O(n/B) rebuild to whichever
// unlucky update trips the RebuildScheduler threshold — correct for the
// amortized bounds, but a latency cliff under serving traffic. This
// thread runs the split-phase alternative every dynamized family
// exposes:
//
//   prepare  — gateless: harvest the old structure and build the
//              replacement. Both structures latch their own harvest
//              (ExternalPst takes its side/root latches for the read
//              pass, Dynamized holds merge_mu + levels_mu shared), so
//              the pass is coherent under concurrent query batches AND
//              write epochs. Holding a gate read entry across the
//              O(n/B) prepare would let the first arriving writer —
//              and, by write preference, every new reader batch — stall
//              behind the whole rebuild.
//   commit   — under the *exclusive* (write) gate epoch: validate the
//              RebuildScheduler::update_stamp() captured at harvest and
//              swap the roots (free-list work only — no device I/O). If
//              any update landed in between, the commit aborts, the
//              fresh pages are freed, and the structure's next trigger
//              re-fires: a rebuild never clobbers an update, and the
//              only update that waits on one is a writer needing the
//              rebuilt structure's own harvest latch mid-prepare (e.g.
//              a Dynamized buffer flush contending on merge_mu).
//
// Wiring: install the trigger with the structure's hook setter, e.g.
//   dyn.SetPurgeHook([&] { maint.Schedule(maint.RebuildJob(&dyn)); });
//   pst.SetRebuildHook([&] { maint.Schedule(maint.RebuildJob(&pst)); });
// The hook fires from an update path that may hold the write gate, so
// Schedule only enqueues (never blocks on the gate). Drain() must not be
// called while holding the write gate — the queued jobs need a write
// epoch of their own to commit.
//
// Lifetime: the thread references the gate and the structures inside its
// queued jobs; destroy it (or Drain) before destroying either.

#ifndef CCIDX_DYNAMIC_MAINTENANCE_H_
#define CCIDX_DYNAMIC_MAINTENANCE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

#include "ccidx/io/wal.h"
#include "ccidx/query/epoch_gate.h"

namespace ccidx {

class MaintenanceThread {
 public:
  /// `gate` is the serving executor's epoch gate (nullptr for standalone
  /// use in tests: jobs then run without epoch protection and the caller
  /// must keep writers quiescent around them).
  explicit MaintenanceThread(EpochGate* gate = nullptr)
      : gate_(gate), thread_([this] { Loop(); }) {}

  ~MaintenanceThread() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  MaintenanceThread(const MaintenanceThread&) = delete;
  MaintenanceThread& operator=(const MaintenanceThread&) = delete;

  /// Enqueues a job; never blocks on the gate (safe to call from a hook
  /// firing inside a write epoch).
  void Schedule(std::function<void()> job) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      queue_.push_back(std::move(job));
    }
    cv_.notify_all();
  }

  /// Blocks until every scheduled job has run. Must not be called while
  /// holding the write gate (see file comment).
  void Drain() {
    std::unique_lock<std::mutex> lk(mu_);
    idle_cv_.wait(lk, [this] { return queue_.empty() && !busy_; });
  }

  /// The split-phase rebuild job for any structure exposing
  /// PrepareGlobalRebuild / CommitGlobalRebuild / AbandonGlobalRebuild
  /// (Dynamized, ExternalPst). Prepare runs gateless (the structures
  /// latch their own harvest — see file comment), commit under the
  /// write epoch with stamp validation.
  template <typename Structure>
  std::function<void()> RebuildJob(Structure* s) {
    return [this, s] {
      auto pending = s->PrepareGlobalRebuild();
      if (!pending.ok()) {
        // The build failed (the scope already rolled its pages back);
        // release the pending latch so the next trigger re-fires.
        s->AbandonGlobalRebuild({});
        rebuilds_failed_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      bool committed;
      if (gate_ != nullptr) gate_->EnterWrite();
      committed = s->CommitGlobalRebuild(std::move(*pending));
      if (gate_ != nullptr) gate_->ExitWrite();
      (committed ? rebuilds_committed_ : rebuilds_aborted_)
          .fetch_add(1, std::memory_order_relaxed);
    };
  }

  /// Periodic WAL checkpoint (DESIGN.md §13): quiesces writers under the
  /// exclusive gate epoch (so no txn is mid-flight), forces dirty pool
  /// pages, and rewrites the log as one checkpoint record. Schedule it on
  /// a cadence (e.g. from the serving loop every N committed batches) —
  /// between checkpoints the log grows by one before-image per page
  /// touched. Like every job, it must not be scheduled from a thread
  /// already inside a write epoch that waits on Drain().
  std::function<void()> CheckpointJob(Wal* wal, Pager* pager) {
    return [this, wal, pager] {
      if (gate_ != nullptr) gate_->EnterWrite();
      Status st = wal->Checkpoint(pager);
      if (gate_ != nullptr) gate_->ExitWrite();
      (st.ok() ? checkpoints_taken_ : checkpoints_failed_)
          .fetch_add(1, std::memory_order_relaxed);
    };
  }

  uint64_t checkpoints_taken() const {
    return checkpoints_taken_.load(std::memory_order_relaxed);
  }
  uint64_t checkpoints_failed() const {
    return checkpoints_failed_.load(std::memory_order_relaxed);
  }

  /// Split-phase rebuilds that installed / that aborted on a stale stamp
  /// (the trigger re-fires) / whose prepare phase failed outright.
  uint64_t rebuilds_committed() const {
    return rebuilds_committed_.load(std::memory_order_relaxed);
  }
  uint64_t rebuilds_aborted() const {
    return rebuilds_aborted_.load(std::memory_order_relaxed);
  }
  uint64_t rebuilds_failed() const {
    return rebuilds_failed_.load(std::memory_order_relaxed);
  }

  EpochGate* gate() const { return gate_; }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping: a dropped job would leave a
      // structure's rebuild-pending latch set forever.
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      std::function<void()> job = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
      lk.unlock();
      job();
      lk.lock();
      busy_ = false;
      if (queue_.empty()) idle_cv_.notify_all();
    }
  }

  EpochGate* gate_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;  // guarded by mu_
  bool busy_ = false;                        // guarded by mu_
  bool stop_ = false;                        // guarded by mu_
  std::atomic<uint64_t> rebuilds_committed_{0};
  std::atomic<uint64_t> rebuilds_aborted_{0};
  std::atomic<uint64_t> rebuilds_failed_{0};
  std::atomic<uint64_t> checkpoints_taken_{0};
  std::atomic<uint64_t> checkpoints_failed_{0};
  std::thread thread_;
};

}  // namespace ccidx

#endif  // CCIDX_DYNAMIC_MAINTENANCE_H_
