// PurgeRebuild: the shared fault-atomic global-rebuild skeleton of the
// dynamization layer (DESIGN.md §8).
//
// Every dynamized family restores its invariants the same way: (1)
// harvest the stored records and the old structure's page ids strictly
// read-only — a failure here changes nothing; (2) drop the records the
// tombstone set marks dead; (3) build the replacement from the live set
// under an AllocationScope — a failure rolls the new pages back and the
// old structure still answers queries; (4) only then retire the old
// pages by id, which needs no device transfer and so cannot fail
// mid-way, consume the expunged tombstones, and reset the rebuild
// scheduler. This header centralizes that sequence so the four copies
// that used to live in AugmentedMetablockTree / AugmentedThreeSidedTree
// ::GlobalPurgeRebuild, CornerStructure::Rebuild and
// ExternalPst::GlobalRebuild stay in lockstep and the fault-injection
// suite reasons about one skeleton.
//
// The structure-specific pieces stay with the caller as callables:
//   collect(std::vector<Record>*)  — harvest every stored record
//   visit(std::vector<PageId>*)    — enumerate every old page id
//   build(std::vector<Record>)     — build the replacement from the live
//                                    set and stage the new roots in
//                                    caller locals; runs inside the
//                                    AllocationScope, so returning an
//                                    error rolls everything back
// The caller installs the staged roots after PurgeRebuild returns OK
// (ordering relative to the frees is immaterial: both are in-memory /
// free-list-only effects past the commit point).

#ifndef CCIDX_DYNAMIC_PURGE_REBUILD_H_
#define CCIDX_DYNAMIC_PURGE_REBUILD_H_

#include <utility>
#include <vector>

#include "ccidx/dynamic/rebuild.h"
#include "ccidx/dynamic/tombstones.h"
#include "ccidx/io/pager.h"

namespace ccidx {

template <typename Record, typename Hash, typename Collect, typename Visit,
          typename Build>
Status PurgeRebuild(Pager* pager, TombstoneSet<Record, Hash>* tombstones,
                    RebuildScheduler* sched, Collect&& collect, Visit&& visit,
                    Build&& build) {
  // Phase 1: read-only harvest. Nothing is mutated; any failure aborts
  // with the structure intact.
  std::vector<Record> all;
  CCIDX_RETURN_IF_ERROR(collect(&all));
  std::vector<PageId> old_pages;
  CCIDX_RETURN_IF_ERROR(visit(&old_pages));

  // Phase 2: split live from dead. The purged list is kept so only the
  // tombstones actually expunged are consumed below — a tombstone for a
  // record the harvest did not surface (which the update invariants rule
  // out, but the skeleton does not rely on) stays outstanding.
  std::vector<Record> live;
  std::vector<Record> purged;
  live.reserve(all.size());
  for (const Record& r : all) {
    if (tombstones != nullptr && tombstones->Contains(r)) {
      purged.push_back(r);
    } else {
      live.push_back(r);
    }
  }

  // Phase 3: build the replacement under a scope.
  AllocationScope scope(pager);
  CCIDX_RETURN_IF_ERROR(build(std::move(live)));
  scope.Commit();

  // Phase 4: point of no return — retire the old pages by id (free-list
  // only, no device transfer), settle the bookkeeping.
  for (PageId id : old_pages) {
    (void)pager->Free(id);
  }
  if (tombstones != nullptr) {
    for (const Record& r : purged) {
      tombstones->Consume(r);
    }
  }
  if (sched != nullptr) sched->Reset();
  return Status::OK();
}

}  // namespace ccidx

#endif  // CCIDX_DYNAMIC_PURGE_REBUILD_H_
