// RakeContractIndex: class indexing via hierarchy decomposition
// (Section 4, Lemmas 4.5/4.6, Theorem 4.7).
//
// label-edges (Fig. 22, after Sleator–Tarjan [34]) marks, at every interior
// class, the edge to its largest-subtree child as THICK and the rest as
// THIN; any leaf-to-root walk then crosses at most log2 c thin edges
// (Lemma 4.5). The thick edges decompose the hierarchy into thick paths.
//
// rake-and-contract (Fig. 23) repeatedly (a) RAKES thin-attached leaves —
// indexing their accumulated collection (by then the class's full extent)
// with an explicit B+-tree — and (b) CONTRACTS hanging thick paths —
// indexing the path's collections as ONE 3-sided structure (Lemma 4.3):
// within a degenerate (path) hierarchy, a full-extent query is exactly a
// 3-sided query (classes at or below the queried one x attribute range).
// Either way the deleted nodes' collections are copied to the parent, so
// each object is replicated once per thin edge on its root path: at most
// log2 c copies (Lemma 4.6).
//
// This implementation performs the equivalent direct construction: one
// structure per thick path, where path position (top = 0) is the class
// dimension and each class's collection is its extent plus the full
// extents of its thin-attached subtrees.
//
//   query  O(log_B n + t/B + log2 B) I/Os     (Theorem 4.7)
//   space  O((n/B) log2 c) pages
//
// Inserts are supported through the Lemma 4.4 semi-dynamic 3-sided tree:
// an object is inserted into the structure of its own thick path and into
// the structure at each thin-edge attachment point on its root walk — at
// most log2 c + 1 structures (Lemma 4.6), each at the amortized cost of
// Lemma 4.4, giving Theorem 4.7's amortized insert bound.

#ifndef CCIDX_CLASSES_RAKE_CONTRACT_H_
#define CCIDX_CLASSES_RAKE_CONTRACT_H_

#include <atomic>
#include <span>
#include <vector>

#include "ccidx/bptree/bptree.h"
#include "ccidx/build/record_stream.h"
#include "ccidx/classes/hierarchy.h"
#include "ccidx/core/augmented_three_sided_tree.h"

namespace ccidx {

/// label-edges: for each class, the child id reached by its thick edge
/// (kNoClass for leaves). Thick = largest subtree (ties: first).
std::vector<uint32_t> ComputeThickEdges(const ClassHierarchy& h);

/// Number of thin edges on the walk from `class_id` to its root, given the
/// thick-edge labeling. Lemma 4.5: always <= log2 c.
uint32_t ThinEdgesToRoot(const ClassHierarchy& h,
                         const std::vector<uint32_t>& thick,
                         uint32_t class_id);

/// Theorem 4.7 class index (bulk build + dynamic updates: native inserts,
/// deletes via the per-path structures' native/weak deletes).
///
/// Thread safety (DESIGN.md §7/§11): Query is const and safe to run from
/// any number of threads concurrently over one shared Pager. Insert/
/// Delete are N-writer safe within a write epoch by delegation: raked
/// B+-trees use subtree-striped latches, path 3-sided trees their
/// per-structure write latch, and the replication watermark is atomic
/// (updates to the SAME object must stay ordered — route them through
/// one writer, as UpdateExecutor's per-key partition does). Build
/// requires full quiescence (QueryExecutor::Quiesce).
class RakeContractIndex {
 public:
  // Movable (the atomic watermark requires spelling it out; moving is a
  // write, externally synchronized like all writes).
  RakeContractIndex(RakeContractIndex&& o) noexcept
      : hierarchy_(o.hierarchy_),
        paths_(std::move(o.paths_)),
        path_of_(std::move(o.path_of_)),
        pos_in_path_(std::move(o.pos_in_path_)),
        max_replication_(
            o.max_replication_.load(std::memory_order_relaxed)) {}
  RakeContractIndex& operator=(RakeContractIndex&& o) noexcept {
    hierarchy_ = o.hierarchy_;
    paths_ = std::move(o.paths_);
    path_of_ = std::move(o.path_of_);
    pos_in_path_ = std::move(o.pos_in_path_);
    max_replication_.store(
        o.max_replication_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    return *this;
  }
  /// Builds over a frozen hierarchy from a stream of objects: each
  /// object's <= log2 c + 1 path copies are tagged with their thick-path
  /// ordinal and external-sorted once; every path structure then
  /// bulk-loads from its contiguous group of the merged stream.
  /// Fault-atomic.
  static Result<RakeContractIndex> Build(Pager* pager,
                                         const ClassHierarchy* hierarchy,
                                         RecordStream<Object>* objects);

  /// In-memory wrappers over the stream build.
  static Result<RakeContractIndex> Build(Pager* pager,
                                         const ClassHierarchy* hierarchy,
                                         std::span<const Object> objects);
  static Result<RakeContractIndex> Build(Pager* pager,
                                         const ClassHierarchy* hierarchy,
                                         const std::vector<Object>& objects);

  /// Streams ids of all objects in the full extent of `class_id` with
  /// a1 <= attr <= a2 into `sink`; kStop propagates into the path
  /// structure. O(log_B n + t/B + log2 B) I/Os.
  Status Query(uint32_t class_id, Coord a1, Coord a2,
               ResultSink<uint64_t>* sink) const;

  /// Appends ids of all objects in the full extent of `class_id` with
  /// a1 <= attr <= a2. O(log_B n + t/B + log2 B) I/Os.
  Status Query(uint32_t class_id, Coord a1, Coord a2,
               std::vector<uint64_t>* out) const;

  /// Inserts an object into every covering structure (<= log2 c + 1 of
  /// them). Amortized O(log2 c * (log_B n + log2 B + ...)) I/Os.
  Status Insert(const Object& o);

  /// Deletes an object from every covering structure; sets *found (true
  /// iff any replica was removed). Raked B+-trees delete natively
  /// (O(log_B n) each); path 3-sided trees weak-delete through the
  /// dynamization layer (DESIGN.md §8) — amortized O(log2 c * log_B n)
  /// I/Os plus the per-structure purge charges. Under a device fault the
  /// composite walk is resumable, not atomic: retry the same Delete to
  /// remove the remaining replicas (each component delete is itself
  /// atomic). N-writer safe within a write epoch (see class comment).
  Status Delete(const Object& o, bool* found);

  /// Max copies of any object across all structures (Lemma 4.6: <= log2 c
  /// thin edges + 1).
  uint32_t max_replication() const {
    return max_replication_.load(std::memory_order_relaxed);
  }

  /// Number of thick paths (== number of structures).
  size_t num_paths() const { return paths_.size(); }

 private:
  struct PathStructure {
    std::vector<uint32_t> classes;  // top to bottom
    // Singleton paths use a raked B+-tree; longer paths a semi-dynamic
    // 3-sided tree (Lemma 4.4).
    bool is_btree;
    BPlusTree btree;
    AugmentedThreeSidedTree tstree;

    PathStructure(BPlusTree bt, AugmentedThreeSidedTree ts, bool use_bt,
                  std::vector<uint32_t> cls)
        : classes(std::move(cls)),
          is_btree(use_bt),
          btree(std::move(bt)),
          tstree(std::move(ts)) {}
  };

  RakeContractIndex(const ClassHierarchy* hierarchy)
      : hierarchy_(hierarchy) {}

  const ClassHierarchy* hierarchy_;
  std::vector<PathStructure> paths_;
  std::vector<size_t> path_of_;  // class -> index into paths_
  std::vector<Coord> pos_in_path_;  // class -> position from path top
  // Monotone watermark, raised by concurrent inserters (CAS max).
  std::atomic<uint32_t> max_replication_{0};
};

}  // namespace ccidx

#endif  // CCIDX_CLASSES_RAKE_CONTRACT_H_
