// ClassHierarchy: a static forest of classes with the label-class
// assignment of Fig. 4 (Prop. 2.5).
//
// Each class gets (a) an exact rational label and range — the paper's
// construction: the forest divides [0, 1) among its roots, and a class with
// range [lo, hi) takes attribute value lo and hands its i-th of n children
// the (i+1)-th of (n+1) equal parts of the range (reproducing Example 2.3:
// Person [0,1) attr 0, Student [1/3,2/3), Professor [2/3,1), Asst.Prof
// [5/6,1)) — and (b) an order-isomorphic integer code (DFS preorder) used
// by the disk indexes, whose subtree ranges [code, subtree_max_code] play
// the role of the rational ranges. Tests verify the isomorphism.
//
// The class/subclass relationship is static once Freeze() is called
// (the paper's standing assumption, §1.3); objects remain dynamic.

#ifndef CCIDX_CLASSES_HIERARCHY_H_
#define CCIDX_CLASSES_HIERARCHY_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ccidx/common/rational.h"
#include "ccidx/common/status.h"
#include "ccidx/core/geometry.h"

namespace ccidx {

/// Sentinel parent for roots.
inline constexpr uint32_t kNoClass = ~0u;

/// An object: member of exactly one class, with one indexed attribute
/// (e.g. income in Example 2.4).
struct Object {
  uint64_t id;
  uint32_t class_id;
  Coord attr;

  bool operator==(const Object& o) const {
    return id == o.id && class_id == o.class_id && attr == o.attr;
  }
};

/// A static forest of classes. Build with AddClass, then Freeze().
class ClassHierarchy {
 public:
  ClassHierarchy() = default;

  /// Adds a class; parent must already exist (or kNoClass for a root).
  /// Returns the new class id. Fails after Freeze().
  Result<uint32_t> AddClass(std::string name, uint32_t parent = kNoClass);

  /// Finalizes the forest: runs label-class and assigns preorder codes.
  Status Freeze();

  bool frozen() const { return frozen_; }
  /// Number of classes c.
  uint32_t size() const { return static_cast<uint32_t>(parent_.size()); }

  const std::string& name(uint32_t id) const { return name_[id]; }
  uint32_t parent(uint32_t id) const { return parent_[id]; }
  const std::vector<uint32_t>& children(uint32_t id) const {
    return children_[id];
  }
  const std::vector<uint32_t>& roots() const { return roots_; }
  uint32_t depth(uint32_t id) const { return depth_[id]; }
  uint32_t subtree_size(uint32_t id) const { return subtree_size_[id]; }

  /// The rational class-attribute value assigned by label-class (Fig. 4).
  /// For hierarchies whose exact labels would overflow 64-bit rationals
  /// (denominators are products of (children+1) along the path — a
  /// 256-deep path needs 2^256), Freeze() falls back to the
  /// order-isomorphic integer codes as labels; exact_labels() reports
  /// which regime is active. Indexing never depends on the exact values,
  /// only on their order (Prop. 2.5).
  const Rational& label(uint32_t id) const { return label_[id]; }
  /// The half-open rational range [lo, hi) covering the class's subtree.
  std::pair<Rational, Rational> range(uint32_t id) const {
    return {range_lo_[id], range_hi_[id]};
  }
  /// True iff label()/range() carry the exact Fig. 4 rationals.
  bool exact_labels() const { return exact_labels_; }

  /// Order-isomorphic integer code (DFS preorder within label order).
  Coord code(uint32_t id) const { return code_[id]; }
  /// Largest code in the class's subtree; [code, subtree_max_code] covers
  /// exactly the full extent's classes.
  Coord subtree_max_code(uint32_t id) const { return subtree_max_[id]; }
  /// Inverse of code().
  uint32_t class_at_code(Coord code) const {
    return code_to_class_[static_cast<size_t>(code)];
  }

  /// True iff `ancestor` is `descendant` or one of its ancestors.
  bool IsAncestorOrSelf(uint32_t ancestor, uint32_t descendant) const;

 private:
  void LabelClass(uint32_t id, const Rational& lo, const Rational& hi);
  Coord AssignCodes(uint32_t id, Coord next);
  // Worst-case log2 of any label denominator; decides exact vs fallback.
  double LabelDenominatorBits(uint32_t id, double bits) const;

  bool frozen_ = false;
  bool exact_labels_ = true;
  std::vector<std::string> name_;
  std::vector<uint32_t> parent_;
  std::vector<std::vector<uint32_t>> children_;
  std::vector<uint32_t> roots_;
  std::vector<uint32_t> depth_;
  std::vector<uint32_t> subtree_size_;
  std::vector<Rational> label_;
  std::vector<Rational> range_lo_, range_hi_;
  std::vector<Coord> code_, subtree_max_;
  std::vector<uint32_t> code_to_class_;
};

/// Linear-scan oracle: the full extent of `class_id` restricted to
/// attr in [a1, a2], as sorted object ids.
std::vector<uint64_t> NaiveClassQuery(const ClassHierarchy& h,
                                      const std::vector<Object>& objects,
                                      uint32_t class_id, Coord a1, Coord a2);

}  // namespace ccidx

#endif  // CCIDX_CLASSES_HIERARCHY_H_
