// Shared bulk-build plumbing for the class indexes (DESIGN.md §6).
//
// Every class-indexing scheme fans one logical object stream out into
// many per-collection B+-trees (canonical range-tree nodes, ancestor
// extents, own extents). The bulk path is the same for all of them: tag
// each replicated entry with its collection ordinal, external-sort the
// tagged records by (collection, entry), then bulk-load each collection's
// tree from its contiguous group of the merged stream — one sort plus
// O(total/B) build I/Os, never materializing the replicated set.

#ifndef CCIDX_CLASSES_CLASS_BUILD_UTIL_H_
#define CCIDX_CLASSES_CLASS_BUILD_UTIL_H_

#include <vector>

#include "ccidx/bptree/bptree.h"
#include "ccidx/build/external_sorter.h"
#include "ccidx/build/record_stream.h"

namespace ccidx {
namespace internal {

/// Sorter over (collection ordinal, BtEntry) records.
using CollectionSorter =
    ExternalSorter<Keyed<BtEntry>, KeyedLess<BtEntry, std::less<BtEntry>>>;

/// Bulk-loads (*trees)[key] from each key group of the merged stream.
inline Status LoadGroupedTrees(Pager* pager,
                               RecordStream<Keyed<BtEntry>>* merged,
                               std::vector<BPlusTree>* trees) {
  GroupedStream<BtEntry> groups(merged);
  while (true) {
    uint64_t key = 0;
    auto has = groups.NextGroup(&key);
    CCIDX_RETURN_IF_ERROR(has.status());
    if (!*has) return Status::OK();
    CCIDX_CHECK(key < trees->size());
    auto tree = BPlusTree::BulkLoad(pager, groups.records());
    CCIDX_RETURN_IF_ERROR(tree.status());
    (*trees)[key] = std::move(*tree);
  }
}

}  // namespace internal
}  // namespace ccidx

#endif  // CCIDX_CLASSES_CLASS_BUILD_UTIL_H_
