#include "ccidx/classes/rake_contract.h"

#include <algorithm>
#include <optional>

#include "ccidx/build/external_sorter.h"
#include "ccidx/build/point_group.h"

namespace ccidx {

std::vector<uint32_t> ComputeThickEdges(const ClassHierarchy& h) {
  std::vector<uint32_t> thick(h.size(), kNoClass);
  for (uint32_t c = 0; c < h.size(); ++c) {
    uint32_t best = kNoClass;
    uint32_t best_size = 0;
    for (uint32_t child : h.children(c)) {
      if (h.subtree_size(child) > best_size) {
        best_size = h.subtree_size(child);
        best = child;
      }
    }
    thick[c] = best;
  }
  return thick;
}

uint32_t ThinEdgesToRoot(const ClassHierarchy& h,
                         const std::vector<uint32_t>& thick,
                         uint32_t class_id) {
  uint32_t count = 0;
  uint32_t c = class_id;
  while (h.parent(c) != kNoClass) {
    uint32_t p = h.parent(c);
    if (thick[p] != c) count++;
    c = p;
  }
  return count;
}

Result<RakeContractIndex> RakeContractIndex::Build(
    Pager* pager, const ClassHierarchy* hierarchy,
    RecordStream<Object>* objects) {
  if (hierarchy == nullptr || !hierarchy->frozen()) {
    return Status::InvalidArgument("hierarchy must be frozen");
  }
  const ClassHierarchy& h = *hierarchy;
  RakeContractIndex index(hierarchy);
  AllocationScope scope(pager);

  // Thick-path decomposition (label-edges).
  std::vector<uint32_t> thick = ComputeThickEdges(h);
  index.path_of_.assign(h.size(), 0);
  index.pos_in_path_.assign(h.size(), 0);
  std::vector<std::vector<uint32_t>> path_classes;
  for (uint32_t c = 0; c < h.size(); ++c) {
    // c is a path top iff it is a root or its parent edge is thin.
    uint32_t p = h.parent(c);
    if (p != kNoClass && thick[p] == c) continue;
    std::vector<uint32_t> cls;
    for (uint32_t v = c; v != kNoClass; v = thick[v]) {
      index.path_of_[v] = path_classes.size();
      index.pos_in_path_[v] = static_cast<Coord>(cls.size());
      cls.push_back(v);
    }
    path_classes.push_back(std::move(cls));
  }

  // Distribute objects: each object lands in its own class's path, and in
  // the path of every class reached by walking thin edges toward the root
  // (the rake/contract "copy collection to parent" steps). The tagged
  // copies are external-sorted by (path, point) in one pass.
  ExternalSorter<Keyed<Point>, KeyedLess<Point, PointXOrder>> sorter(pager);
  uint32_t max_rep = 0;
  while (true) {
    auto block = objects->Next();
    CCIDX_RETURN_IF_ERROR(block.status());
    if (block->empty()) break;
    for (const Object& o : *block) {
      if (o.class_id >= h.size()) {
        return Status::InvalidArgument("object with unknown class");
      }
      uint32_t copies = 0;
      uint32_t c = o.class_id;
      while (true) {
        size_t pid = index.path_of_[c];
        CCIDX_RETURN_IF_ERROR(
            sorter.Add({pid, {o.attr, index.pos_in_path_[c], o.id}}));
        copies++;
        uint32_t top = path_classes[pid].front();
        uint32_t p = h.parent(top);
        if (p == kNoClass) break;
        c = p;  // thin edge: the copy lands at the attachment class
      }
      max_rep = std::max(max_rep, copies);
    }
  }
  index.max_replication_ = max_rep;

  // One structure per path: raked B+-tree for singletons, 3-sided tree
  // for longer paths. Full extent of class at position i == points with
  // y >= i. Paths stream their groups out of the merged sorted run in
  // ordinal order; paths with no objects build empty.
  auto merged = sorter.Finish();
  CCIDX_RETURN_IF_ERROR(merged.status());
  GroupedStream<Point> groups(*merged);
  uint64_t group_key = 0;
  auto has_group = groups.NextGroup(&group_key);
  CCIDX_RETURN_IF_ERROR(has_group.status());
  bool pending = *has_group;
  for (size_t pid = 0; pid < path_classes.size(); ++pid) {
    const bool populated = pending && group_key == pid;
    if (path_classes[pid].size() == 1) {
      Result<BPlusTree> bt = BPlusTree(pager);
      if (populated) {
        // Within one path the points ascend by (x, pos, id); a singleton
        // path has constant pos, so the mapped entries ascend by
        // (key, value) as BulkLoad requires.
        Coord code = h.code(path_classes[pid][0]);
        auto to_entry = [code](const Point& pt) {
          return BtEntry{pt.x, pt.id, code};
        };
        MapStream<Point, BtEntry, decltype(to_entry)> entries(
            groups.records(), to_entry);
        bt = BPlusTree::BulkLoad(pager, &entries);
        CCIDX_RETURN_IF_ERROR(bt.status());
      }
      auto ts = AugmentedThreeSidedTree::Build(pager, std::vector<Point>{});
      CCIDX_RETURN_IF_ERROR(ts.status());
      index.paths_.emplace_back(std::move(*bt), std::move(*ts), true,
                                path_classes[pid]);
    } else {
      Result<AugmentedThreeSidedTree> ts =
          AugmentedThreeSidedTree::Build(pager, std::vector<Point>{});
      if (populated) {
        auto group = PointGroup::FromStream(
            pager, groups.records(), DefaultSortBudget(pager, sizeof(Point)),
            /*require_above_diagonal=*/false);
        CCIDX_RETURN_IF_ERROR(group.status());
        ts = AugmentedThreeSidedTree::Build(pager, std::move(*group));
      }
      CCIDX_RETURN_IF_ERROR(ts.status());
      BPlusTree bt(pager);
      index.paths_.emplace_back(std::move(bt), std::move(*ts), false,
                                path_classes[pid]);
    }
    if (populated) {
      has_group = groups.NextGroup(&group_key);
      CCIDX_RETURN_IF_ERROR(has_group.status());
      pending = *has_group;
    }
  }
  scope.Commit();
  return index;
}

Result<RakeContractIndex> RakeContractIndex::Build(
    Pager* pager, const ClassHierarchy* hierarchy,
    std::span<const Object> objects) {
  SpanStream<Object> stream(objects);
  return Build(pager, hierarchy, &stream);
}

Result<RakeContractIndex> RakeContractIndex::Build(
    Pager* pager, const ClassHierarchy* hierarchy,
    const std::vector<Object>& objects) {
  return Build(pager, hierarchy, std::span<const Object>(objects));
}

Status RakeContractIndex::Query(uint32_t class_id, Coord a1, Coord a2,
                                ResultSink<uint64_t>* sink) const {
  if (class_id >= hierarchy_->size()) {
    return Status::InvalidArgument("unknown class");
  }
  const PathStructure& ps = paths_[path_of_[class_id]];
  if (ps.is_btree) {
    TransformSink<BtEntry, uint64_t> xform(sink, [](const BtEntry& e) {
      return std::optional<uint64_t>(e.value);
    });
    return ps.btree.RangeScan(a1, a2, &xform);
  }
  TransformSink<Point, uint64_t> xform(sink, [](const Point& p) {
    return std::optional<uint64_t>(p.id);
  });
  return ps.tstree.Query({a1, a2, pos_in_path_[class_id]}, &xform);
}

Status RakeContractIndex::Query(uint32_t class_id, Coord a1, Coord a2,
                                std::vector<uint64_t>* out) const {
  VectorSink<uint64_t> sink(out);
  return Query(class_id, a1, a2, &sink);
}

Status RakeContractIndex::Insert(const Object& o) {
  if (o.class_id >= hierarchy_->size()) {
    return Status::InvalidArgument("unknown class");
  }
  const ClassHierarchy& h = *hierarchy_;
  uint32_t copies = 0;
  uint32_t c = o.class_id;
  // Same walk as Build: own path, then each thin-edge attachment point.
  // Each covering structure commits its own WAL txn inside its own
  // latches; a crash mid-walk durably keeps a replica prefix, and the
  // composite converges by the resumable-retry rule documented on
  // Delete below.
  while (true) {
    size_t pid = path_of_[c];
    PathStructure& ps = paths_[pid];
    if (ps.is_btree) {
      CCIDX_RETURN_IF_ERROR(ps.btree.Insert(o.attr, o.id, h.code(c)));
    } else {
      CCIDX_RETURN_IF_ERROR(
          ps.tstree.Insert({o.attr, pos_in_path_[c], o.id}));
    }
    copies++;
    uint32_t top = ps.classes.front();
    uint32_t p = h.parent(top);
    if (p == kNoClass) break;
    c = p;
  }
  // CAS max: concurrent inserters only ever raise the watermark.
  uint32_t cur = max_replication_.load(std::memory_order_relaxed);
  while (copies > cur && !max_replication_.compare_exchange_weak(
                             cur, copies, std::memory_order_relaxed)) {
  }
  return Status::OK();
}

Status RakeContractIndex::Delete(const Object& o, bool* found) {
  *found = false;
  if (o.class_id >= hierarchy_->size()) {
    return Status::InvalidArgument("unknown class");
  }
  const ClassHierarchy& h = *hierarchy_;
  // Same walk as Insert: the object's <= log2 c + 1 covering structures.
  // Raked B+-trees delete natively; path 3-sided trees weak-delete
  // through the shared dynamization layer (each with its own scheduled
  // purge), so a delete costs O(log2 c) component deletes.
  //
  // Each component delete is individually atomic under device faults,
  // but the composite is RESUMABLE rather than atomic (like Insert's
  // replica walk): a fault mid-walk returns the error with only a prefix
  // of the replicas removed, and retrying the same Delete removes the
  // rest — found reports whether ANY replica was removed, so a retry
  // after a partial failure still reports true and converges instead of
  // wedging on replica-count disagreement.
  uint32_t c = o.class_id;
  while (true) {
    size_t pid = path_of_[c];
    PathStructure& ps = paths_[pid];
    bool hit = false;
    if (ps.is_btree) {
      CCIDX_RETURN_IF_ERROR(ps.btree.Delete(o.attr, o.id, &hit));
    } else {
      CCIDX_RETURN_IF_ERROR(
          ps.tstree.Delete({o.attr, pos_in_path_[c], o.id}, &hit));
    }
    *found = *found || hit;
    uint32_t top = ps.classes.front();
    uint32_t p = h.parent(top);
    if (p == kNoClass) break;
    c = p;
  }
  return Status::OK();
}

}  // namespace ccidx
