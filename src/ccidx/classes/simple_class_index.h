// SimpleClassIndex: the practical class-indexing method of Theorem 2.6.
//
// A binary range tree over the (static) class dimension: every node of a
// balanced binary tree on the class codes owns a collection — the objects
// whose class code falls in the node's range — and each collection is
// indexed by a B+-tree on the query attribute (procedure index-classes,
// Fig. 6). A query on class C decomposes C's subtree code-range into at
// most 2*ceil(log2 c) canonical nodes and runs a 1-d range search in each;
// an update touches the ceil(log2 c) nodes covering one code.
//
//   query  O(log2 c * log_B n + t/B) I/Os
//   update O(log2 c * log_B n) I/Os (inserts AND deletes — fully dynamic)
//   space  O((n/B) log2 c) pages
//
// The paper singles this scheme out as "an ideal choice for implementation"
// (§2.2); Section 4's RakeContractIndex improves the query bound.

#ifndef CCIDX_CLASSES_SIMPLE_CLASS_INDEX_H_
#define CCIDX_CLASSES_SIMPLE_CLASS_INDEX_H_

#include <atomic>
#include <span>
#include <vector>

#include "ccidx/bptree/bptree.h"
#include "ccidx/build/record_stream.h"
#include "ccidx/classes/hierarchy.h"

namespace ccidx {

/// Theorem 2.6 class index (range tree of B+-trees). Natively fully
/// dynamic: every update touches the ceil(log2 c) covering collections'
/// B+-trees at O(log2 c * log_B n) I/Os worst case, no amortization —
/// the baseline the dynamization layer's amortized families are measured
/// against (DESIGN.md §8).
///
/// Thread safety (DESIGN.md §7/§11): Query/QueryObjects are const and
/// safe to run from any number of threads concurrently over one shared
/// Pager. Insert/Delete are N-writer safe within a write epoch: every
/// covering collection is a B+-tree (subtree-striped latches) and the
/// size counter is atomic. Build still requires full quiescence
/// (QueryExecutor::Quiesce; writers fan out via UpdateExecutor).
class SimpleClassIndex {
 public:
  /// `hierarchy` must be frozen and outlive the index.
  SimpleClassIndex(Pager* pager, const ClassHierarchy* hierarchy);

  // Movable (the atomic counters require spelling it out; moving is a
  // write, externally synchronized like all writes).
  SimpleClassIndex(SimpleClassIndex&& o) noexcept
      : hierarchy_(o.hierarchy_),
        nodes_(std::move(o.nodes_)),
        trees_(std::move(o.trees_)),
        size_(o.size_.load(std::memory_order_relaxed)),
        last_query_collections_(
            o.last_query_collections_.load(std::memory_order_relaxed)) {}
  SimpleClassIndex& operator=(SimpleClassIndex&& o) noexcept {
    hierarchy_ = o.hierarchy_;
    nodes_ = std::move(o.nodes_);
    trees_ = std::move(o.trees_);
    size_.store(o.size_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    last_query_collections_.store(
        o.last_query_collections_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    return *this;
  }

  /// Bulk-builds from a stream of objects: each object's log2 c covering
  /// collections are tagged and external-sorted once, then every
  /// collection bulk-loads from its group of the merged stream —
  /// O(log2 c) sorted replicas, never materialized. Fault-atomic.
  static Result<SimpleClassIndex> Build(Pager* pager,
                                        const ClassHierarchy* hierarchy,
                                        RecordStream<Object>* objects);

  /// In-memory wrappers over the stream build.
  static Result<SimpleClassIndex> Build(Pager* pager,
                                        const ClassHierarchy* hierarchy,
                                        std::span<const Object> objects);
  static Result<SimpleClassIndex> Build(Pager* pager,
                                        const ClassHierarchy* hierarchy,
                                        std::vector<Object>&& objects);

  /// Inserts an object. O(log2 c * log_B n) I/Os.
  Status Insert(const Object& o);

  /// Deletes an object (by id + class + attr). O(log2 c * log_B n) I/Os.
  Status Delete(const Object& o, bool* found);

  /// Streams the ids of all objects in the full extent of `class_id` with
  /// a1 <= attr <= a2 into `sink`; kStop skips the remaining canonical
  /// collections entirely. O(log2 c * log_B n + t/B) I/Os.
  Status Query(uint32_t class_id, Coord a1, Coord a2,
               ResultSink<uint64_t>* sink) const;

  /// Appends the ids of all objects in the full extent of `class_id` with
  /// a1 <= attr <= a2. O(log2 c * log_B n + t/B) I/Os.
  Status Query(uint32_t class_id, Coord a1, Coord a2,
               std::vector<uint64_t>* out) const;

  /// As Query, but streams full objects (class decoded from the entry's
  /// aux code).
  Status QueryObjects(uint32_t class_id, Coord a1, Coord a2,
                      ResultSink<Object>* sink) const;

  /// As Query, but materializes full objects.
  Status QueryObjects(uint32_t class_id, Coord a1, Coord a2,
                      std::vector<Object>* out) const;

  uint64_t size() const { return size_.load(std::memory_order_relaxed); }

  /// Number of collections (B+-trees) — O(c).
  size_t num_collections() const { return nodes_.size(); }

  /// Collections consulted by the last Query (must be <= 2*ceil(log2 c)).
  /// Under concurrent queries this reports one of the in-flight queries'
  /// counts (relaxed atomic — diagnostics only, never torn).
  size_t last_query_collections() const {
    return last_query_collections_.load(std::memory_order_relaxed);
  }

 private:
  struct RangeNode {
    Coord lo, hi;      // class-code range covered
    size_t left = 0;   // indices into nodes_; 0 == none (node 0 is root)
    size_t right = 0;
  };

  size_t BuildNode(Coord lo, Coord hi);
  // Canonical decomposition of [lo, hi] into node indices.
  void Decompose(size_t node, Coord lo, Coord hi,
                 std::vector<size_t>* out) const;
  // Stages the root pages of the canonical collections as one batched
  // device round before the serial per-collection scans (DESIGN.md §10).
  // No-op in cost-model mode (speculation budget zero).
  void WarmCanonicalRoots(const std::vector<size_t>& canonical) const;
  // Nodes on the path covering a single code.
  void PathTo(Coord code, std::vector<size_t>* out) const;

  const ClassHierarchy* hierarchy_;
  std::vector<RangeNode> nodes_;
  std::vector<BPlusTree> trees_;  // parallel to nodes_
  std::atomic<uint64_t> size_{0};
  mutable std::atomic<size_t> last_query_collections_{0};
};

}  // namespace ccidx

#endif  // CCIDX_CLASSES_SIMPLE_CLASS_INDEX_H_
