#include "ccidx/classes/baselines.h"

#include <optional>

namespace ccidx {

SingleIndexBaseline::SingleIndexBaseline(Pager* pager,
                                         const ClassHierarchy* hierarchy)
    : hierarchy_(hierarchy), tree_(pager) {
  CCIDX_CHECK(hierarchy_ != nullptr && hierarchy_->frozen());
}

Status SingleIndexBaseline::Insert(const Object& o) {
  if (o.class_id >= hierarchy_->size()) {
    return Status::InvalidArgument("unknown class");
  }
  return tree_.Insert(o.attr, o.id, hierarchy_->code(o.class_id));
}

Status SingleIndexBaseline::Delete(const Object& o, bool* found) {
  return tree_.Delete(o.attr, o.id, found);
}

Status SingleIndexBaseline::Query(uint32_t class_id, Coord a1, Coord a2,
                                  ResultSink<uint64_t>* sink) const {
  if (class_id >= hierarchy_->size()) {
    return Status::InvalidArgument("unknown class");
  }
  Coord lo = hierarchy_->code(class_id);
  Coord hi = hierarchy_->subtree_max_code(class_id);
  TransformSink<BtEntry, uint64_t> xform(
      sink, [lo, hi](const BtEntry& e) -> std::optional<uint64_t> {
        if (e.aux < lo || e.aux > hi) return std::nullopt;
        return e.value;
      });
  return tree_.RangeScan(a1, a2, &xform);
}

Status SingleIndexBaseline::Query(uint32_t class_id, Coord a1, Coord a2,
                                  std::vector<uint64_t>* out) const {
  VectorSink<uint64_t> sink(out);
  return Query(class_id, a1, a2, &sink);
}

FullExtentIndex::FullExtentIndex(Pager* pager,
                                 const ClassHierarchy* hierarchy)
    : hierarchy_(hierarchy) {
  CCIDX_CHECK(hierarchy_ != nullptr && hierarchy_->frozen());
  trees_.reserve(hierarchy_->size());
  for (uint32_t i = 0; i < hierarchy_->size(); ++i) {
    trees_.emplace_back(pager);
  }
}

Status FullExtentIndex::Insert(const Object& o) {
  if (o.class_id >= hierarchy_->size()) {
    return Status::InvalidArgument("unknown class");
  }
  Coord code = hierarchy_->code(o.class_id);
  for (uint32_t c = o.class_id; c != kNoClass; c = hierarchy_->parent(c)) {
    CCIDX_RETURN_IF_ERROR(trees_[c].Insert(o.attr, o.id, code));
  }
  size_++;
  return Status::OK();
}

Status FullExtentIndex::Delete(const Object& o, bool* found) {
  *found = false;
  if (o.class_id >= hierarchy_->size()) {
    return Status::InvalidArgument("unknown class");
  }
  bool any = false;
  for (uint32_t c = o.class_id; c != kNoClass; c = hierarchy_->parent(c)) {
    bool f = false;
    CCIDX_RETURN_IF_ERROR(trees_[c].Delete(o.attr, o.id, &f));
    any |= f;
  }
  if (any) {
    size_--;
    *found = true;
  }
  return Status::OK();
}

Status FullExtentIndex::Query(uint32_t class_id, Coord a1, Coord a2,
                              ResultSink<uint64_t>* sink) const {
  if (class_id >= hierarchy_->size()) {
    return Status::InvalidArgument("unknown class");
  }
  TransformSink<BtEntry, uint64_t> xform(
      sink, [](const BtEntry& e) { return std::optional<uint64_t>(e.value); });
  return trees_[class_id].RangeScan(a1, a2, &xform);
}

Status FullExtentIndex::Query(uint32_t class_id, Coord a1, Coord a2,
                              std::vector<uint64_t>* out) const {
  VectorSink<uint64_t> sink(out);
  return Query(class_id, a1, a2, &sink);
}

ExtentOnlyIndex::ExtentOnlyIndex(Pager* pager,
                                 const ClassHierarchy* hierarchy)
    : hierarchy_(hierarchy) {
  CCIDX_CHECK(hierarchy_ != nullptr && hierarchy_->frozen());
  trees_.reserve(hierarchy_->size());
  for (uint32_t i = 0; i < hierarchy_->size(); ++i) {
    trees_.emplace_back(pager);
  }
}

Status ExtentOnlyIndex::Insert(const Object& o) {
  if (o.class_id >= hierarchy_->size()) {
    return Status::InvalidArgument("unknown class");
  }
  CCIDX_RETURN_IF_ERROR(
      trees_[o.class_id].Insert(o.attr, o.id, hierarchy_->code(o.class_id)));
  size_++;
  return Status::OK();
}

Status ExtentOnlyIndex::Delete(const Object& o, bool* found) {
  *found = false;
  if (o.class_id >= hierarchy_->size()) {
    return Status::InvalidArgument("unknown class");
  }
  CCIDX_RETURN_IF_ERROR(trees_[o.class_id].Delete(o.attr, o.id, found));
  if (*found) size_--;
  return Status::OK();
}

Status ExtentOnlyIndex::Query(uint32_t class_id, Coord a1, Coord a2,
                              ResultSink<uint64_t>* sink) const {
  if (class_id >= hierarchy_->size()) {
    return Status::InvalidArgument("unknown class");
  }
  TransformSink<BtEntry, uint64_t> xform(
      sink, [](const BtEntry& e) { return std::optional<uint64_t>(e.value); });
  // Every class of the subtree, by code range.
  for (Coord code = hierarchy_->code(class_id);
       code <= hierarchy_->subtree_max_code(class_id) && !xform.stopped();
       ++code) {
    uint32_t c = hierarchy_->class_at_code(code);
    CCIDX_RETURN_IF_ERROR(trees_[c].RangeScan(a1, a2, &xform));
  }
  return Status::OK();
}

Status ExtentOnlyIndex::Query(uint32_t class_id, Coord a1, Coord a2,
                              std::vector<uint64_t>* out) const {
  VectorSink<uint64_t> sink(out);
  return Query(class_id, a1, a2, &sink);
}

}  // namespace ccidx
