#include "ccidx/classes/baselines.h"

#include <optional>

#include "ccidx/classes/class_build_util.h"

namespace ccidx {

namespace {

// Drains an object stream, tagging each object's replicas with the
// collection ordinals `fan` yields, then bulk-loads every collection tree
// from the merged sorted stream. The per-scheme Build functions differ
// only in the fan-out rule.
template <typename Fan>
Status BulkLoadCollections(Pager* pager, const ClassHierarchy& h,
                           RecordStream<Object>* objects,
                           std::vector<BPlusTree>* trees, uint64_t* count,
                           Fan fan) {
  internal::CollectionSorter sorter(pager);
  uint64_t n = 0;
  while (true) {
    auto block = objects->Next();
    CCIDX_RETURN_IF_ERROR(block.status());
    if (block->empty()) break;
    for (const Object& o : *block) {
      if (o.class_id >= h.size()) {
        return Status::InvalidArgument("unknown class");
      }
      CCIDX_RETURN_IF_ERROR(fan(o, &sorter));
      n++;
    }
  }
  auto merged = sorter.Finish();
  CCIDX_RETURN_IF_ERROR(merged.status());
  CCIDX_RETURN_IF_ERROR(internal::LoadGroupedTrees(pager, *merged, trees));
  *count = n;
  return Status::OK();
}

}  // namespace

SingleIndexBaseline::SingleIndexBaseline(Pager* pager,
                                         const ClassHierarchy* hierarchy)
    : hierarchy_(hierarchy), tree_(pager) {
  CCIDX_CHECK(hierarchy_ != nullptr && hierarchy_->frozen());
}

Result<SingleIndexBaseline> SingleIndexBaseline::Build(
    Pager* pager, const ClassHierarchy* hierarchy,
    RecordStream<Object>* objects) {
  if (hierarchy == nullptr || !hierarchy->frozen()) {
    return Status::InvalidArgument("hierarchy must be frozen");
  }
  SingleIndexBaseline index(pager, hierarchy);
  AllocationScope scope(pager);
  ExternalSorter<BtEntry> sorter(pager);
  while (true) {
    auto block = objects->Next();
    CCIDX_RETURN_IF_ERROR(block.status());
    if (block->empty()) break;
    for (const Object& o : *block) {
      if (o.class_id >= hierarchy->size()) {
        return Status::InvalidArgument("unknown class");
      }
      CCIDX_RETURN_IF_ERROR(
          sorter.Add({o.attr, o.id, hierarchy->code(o.class_id)}));
    }
  }
  auto merged = sorter.Finish();
  CCIDX_RETURN_IF_ERROR(merged.status());
  auto tree = BPlusTree::BulkLoad(pager, *merged);
  CCIDX_RETURN_IF_ERROR(tree.status());
  index.tree_ = std::move(*tree);
  scope.Commit();
  return index;
}

Result<SingleIndexBaseline> SingleIndexBaseline::Build(
    Pager* pager, const ClassHierarchy* hierarchy,
    std::span<const Object> objects) {
  SpanStream<Object> stream(objects);
  return Build(pager, hierarchy, &stream);
}

Status SingleIndexBaseline::Insert(const Object& o) {
  if (o.class_id >= hierarchy_->size()) {
    return Status::InvalidArgument("unknown class");
  }
  return tree_.Insert(o.attr, o.id, hierarchy_->code(o.class_id));
}

Status SingleIndexBaseline::Delete(const Object& o, bool* found) {
  return tree_.Delete(o.attr, o.id, found);
}

Status SingleIndexBaseline::Query(uint32_t class_id, Coord a1, Coord a2,
                                  ResultSink<uint64_t>* sink) const {
  if (class_id >= hierarchy_->size()) {
    return Status::InvalidArgument("unknown class");
  }
  Coord lo = hierarchy_->code(class_id);
  Coord hi = hierarchy_->subtree_max_code(class_id);
  TransformSink<BtEntry, uint64_t> xform(
      sink, [lo, hi](const BtEntry& e) -> std::optional<uint64_t> {
        if (e.aux < lo || e.aux > hi) return std::nullopt;
        return e.value;
      });
  return tree_.RangeScan(a1, a2, &xform);
}

Status SingleIndexBaseline::Query(uint32_t class_id, Coord a1, Coord a2,
                                  std::vector<uint64_t>* out) const {
  VectorSink<uint64_t> sink(out);
  return Query(class_id, a1, a2, &sink);
}

FullExtentIndex::FullExtentIndex(Pager* pager,
                                 const ClassHierarchy* hierarchy)
    : hierarchy_(hierarchy) {
  CCIDX_CHECK(hierarchy_ != nullptr && hierarchy_->frozen());
  trees_.reserve(hierarchy_->size());
  for (uint32_t i = 0; i < hierarchy_->size(); ++i) {
    trees_.emplace_back(pager);
  }
}

Result<FullExtentIndex> FullExtentIndex::Build(Pager* pager,
                                               const ClassHierarchy* hierarchy,
                                               RecordStream<Object>* objects) {
  if (hierarchy == nullptr || !hierarchy->frozen()) {
    return Status::InvalidArgument("hierarchy must be frozen");
  }
  FullExtentIndex index(pager, hierarchy);
  AllocationScope scope(pager);
  const ClassHierarchy& h = *hierarchy;
  uint64_t n = 0;
  CCIDX_RETURN_IF_ERROR(BulkLoadCollections(
      pager, h, objects, &index.trees_, &n,
      [&h](const Object& o, internal::CollectionSorter* sorter) {
        Coord code = h.code(o.class_id);
        for (uint32_t c = o.class_id; c != kNoClass; c = h.parent(c)) {
          CCIDX_RETURN_IF_ERROR(sorter->Add({c, {o.attr, o.id, code}}));
        }
        return Status::OK();
      }));
  scope.Commit();
  index.size_.store(n, std::memory_order_relaxed);
  return index;
}

Result<FullExtentIndex> FullExtentIndex::Build(Pager* pager,
                                               const ClassHierarchy* hierarchy,
                                               std::span<const Object> objects) {
  SpanStream<Object> stream(objects);
  return Build(pager, hierarchy, &stream);
}

Status FullExtentIndex::Insert(const Object& o) {
  if (o.class_id >= hierarchy_->size()) {
    return Status::InvalidArgument("unknown class");
  }
  Coord code = hierarchy_->code(o.class_id);
  for (uint32_t c = o.class_id; c != kNoClass; c = hierarchy_->parent(c)) {
    CCIDX_RETURN_IF_ERROR(trees_[c].Insert(o.attr, o.id, code));
  }
  size_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status FullExtentIndex::Delete(const Object& o, bool* found) {
  *found = false;
  if (o.class_id >= hierarchy_->size()) {
    return Status::InvalidArgument("unknown class");
  }
  bool any = false;
  for (uint32_t c = o.class_id; c != kNoClass; c = hierarchy_->parent(c)) {
    bool f = false;
    CCIDX_RETURN_IF_ERROR(trees_[c].Delete(o.attr, o.id, &f));
    any |= f;
  }
  if (any) {
    size_.fetch_sub(1, std::memory_order_relaxed);
    *found = true;
  }
  return Status::OK();
}

Status FullExtentIndex::Query(uint32_t class_id, Coord a1, Coord a2,
                              ResultSink<uint64_t>* sink) const {
  if (class_id >= hierarchy_->size()) {
    return Status::InvalidArgument("unknown class");
  }
  TransformSink<BtEntry, uint64_t> xform(
      sink, [](const BtEntry& e) { return std::optional<uint64_t>(e.value); });
  return trees_[class_id].RangeScan(a1, a2, &xform);
}

Status FullExtentIndex::Query(uint32_t class_id, Coord a1, Coord a2,
                              std::vector<uint64_t>* out) const {
  VectorSink<uint64_t> sink(out);
  return Query(class_id, a1, a2, &sink);
}

ExtentOnlyIndex::ExtentOnlyIndex(Pager* pager,
                                 const ClassHierarchy* hierarchy)
    : hierarchy_(hierarchy) {
  CCIDX_CHECK(hierarchy_ != nullptr && hierarchy_->frozen());
  trees_.reserve(hierarchy_->size());
  for (uint32_t i = 0; i < hierarchy_->size(); ++i) {
    trees_.emplace_back(pager);
  }
}

Result<ExtentOnlyIndex> ExtentOnlyIndex::Build(Pager* pager,
                                               const ClassHierarchy* hierarchy,
                                               RecordStream<Object>* objects) {
  if (hierarchy == nullptr || !hierarchy->frozen()) {
    return Status::InvalidArgument("hierarchy must be frozen");
  }
  ExtentOnlyIndex index(pager, hierarchy);
  AllocationScope scope(pager);
  const ClassHierarchy& h = *hierarchy;
  uint64_t n = 0;
  CCIDX_RETURN_IF_ERROR(BulkLoadCollections(
      pager, h, objects, &index.trees_, &n,
      [&h](const Object& o, internal::CollectionSorter* sorter) {
        return sorter->Add({o.class_id, {o.attr, o.id, h.code(o.class_id)}});
      }));
  scope.Commit();
  index.size_.store(n, std::memory_order_relaxed);
  return index;
}

Result<ExtentOnlyIndex> ExtentOnlyIndex::Build(Pager* pager,
                                               const ClassHierarchy* hierarchy,
                                               std::span<const Object> objects) {
  SpanStream<Object> stream(objects);
  return Build(pager, hierarchy, &stream);
}

Status ExtentOnlyIndex::Insert(const Object& o) {
  if (o.class_id >= hierarchy_->size()) {
    return Status::InvalidArgument("unknown class");
  }
  CCIDX_RETURN_IF_ERROR(
      trees_[o.class_id].Insert(o.attr, o.id, hierarchy_->code(o.class_id)));
  size_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status ExtentOnlyIndex::Delete(const Object& o, bool* found) {
  *found = false;
  if (o.class_id >= hierarchy_->size()) {
    return Status::InvalidArgument("unknown class");
  }
  CCIDX_RETURN_IF_ERROR(trees_[o.class_id].Delete(o.attr, o.id, found));
  if (*found) size_.fetch_sub(1, std::memory_order_relaxed);
  return Status::OK();
}

Status ExtentOnlyIndex::Query(uint32_t class_id, Coord a1, Coord a2,
                              ResultSink<uint64_t>* sink) const {
  if (class_id >= hierarchy_->size()) {
    return Status::InvalidArgument("unknown class");
  }
  TransformSink<BtEntry, uint64_t> xform(
      sink, [](const BtEntry& e) { return std::optional<uint64_t>(e.value); });
  // Every class of the subtree, by code range.
  for (Coord code = hierarchy_->code(class_id);
       code <= hierarchy_->subtree_max_code(class_id) && !xform.stopped();
       ++code) {
    uint32_t c = hierarchy_->class_at_code(code);
    CCIDX_RETURN_IF_ERROR(trees_[c].RangeScan(a1, a2, &xform));
  }
  return Status::OK();
}

Status ExtentOnlyIndex::Query(uint32_t class_id, Coord a1, Coord a2,
                              std::vector<uint64_t>* out) const {
  VectorSink<uint64_t> sink(out);
  return Query(class_id, a1, a2, &sink);
}

}  // namespace ccidx
