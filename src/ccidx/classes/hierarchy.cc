#include "ccidx/classes/hierarchy.h"

#include <algorithm>
#include <cmath>

namespace ccidx {

Result<uint32_t> ClassHierarchy::AddClass(std::string name, uint32_t parent) {
  if (frozen_) {
    return Status::InvalidArgument("hierarchy is frozen (static, §1.3)");
  }
  if (parent != kNoClass && parent >= parent_.size()) {
    return Status::InvalidArgument("unknown parent class");
  }
  uint32_t id = static_cast<uint32_t>(parent_.size());
  name_.push_back(std::move(name));
  parent_.push_back(parent);
  children_.emplace_back();
  if (parent == kNoClass) {
    roots_.push_back(id);
  } else {
    children_[parent].push_back(id);
  }
  return id;
}

void ClassHierarchy::LabelClass(uint32_t id, const Rational& lo,
                                const Rational& hi) {
  // Fig. 4: the class takes attribute value lo; its n children take parts
  // 1..n of the (n+1)-way equal split of [lo, hi).
  label_[id] = lo;
  range_lo_[id] = lo;
  range_hi_[id] = hi;
  const auto& kids = children_[id];
  if (kids.empty()) return;
  Rational parts(static_cast<int64_t>(kids.size()) + 1);
  Rational width = (hi - lo) / parts;
  for (size_t i = 0; i < kids.size(); ++i) {
    Rational clo = lo + width * Rational(static_cast<int64_t>(i) + 1);
    Rational chi = lo + width * Rational(static_cast<int64_t>(i) + 2);
    LabelClass(kids[i], clo, chi);
  }
}

double ClassHierarchy::LabelDenominatorBits(uint32_t id,
                                            double bits) const {
  double here = bits + std::log2(static_cast<double>(children_[id].size()) +
                                 1.0);
  double worst = here;
  for (uint32_t child : children_[id]) {
    worst = std::max(worst, LabelDenominatorBits(child, here));
  }
  return worst;
}

Coord ClassHierarchy::AssignCodes(uint32_t id, Coord next) {
  code_[id] = next;
  code_to_class_[static_cast<size_t>(next)] = id;
  next++;
  for (uint32_t child : children_[id]) {
    next = AssignCodes(child, next);
  }
  subtree_max_[id] = next - 1;
  return next;
}

Status ClassHierarchy::Freeze() {
  if (frozen_) return Status::OK();
  uint32_t c = size();
  if (c == 0) {
    return Status::InvalidArgument("empty hierarchy");
  }
  label_.assign(c, Rational());
  range_lo_.assign(c, Rational());
  range_hi_.assign(c, Rational());
  code_.assign(c, 0);
  subtree_max_.assign(c, 0);
  code_to_class_.assign(c, kNoClass);
  depth_.assign(c, 0);
  subtree_size_.assign(c, 1);

  Coord next = 0;
  for (uint32_t root : roots_) {
    next = AssignCodes(root, next);
  }
  CCIDX_CHECK(next == static_cast<Coord>(c));

  // Exact Fig. 4 labels need label denominators (products of children+1
  // along each path, times the root count) to stay well inside int64 —
  // cross-multiplying comparisons squares them. Otherwise fall back to the
  // order-isomorphic integer codes (see header).
  double root_bits = std::log2(static_cast<double>(roots_.size())) + 1;
  double worst_bits = 0;
  for (uint32_t root : roots_) {
    worst_bits = std::max(worst_bits, LabelDenominatorBits(root, root_bits));
  }
  exact_labels_ = worst_bits <= 30.0;
  if (exact_labels_) {
    // Forest: divide [0, 1) equally among the roots (Prop. 2.5 proof).
    Rational k(static_cast<int64_t>(roots_.size()));
    for (size_t i = 0; i < roots_.size(); ++i) {
      Rational lo = Rational(static_cast<int64_t>(i)) / k;
      Rational hi = Rational(static_cast<int64_t>(i) + 1) / k;
      LabelClass(roots_[i], lo, hi);
    }
  } else {
    for (uint32_t id = 0; id < c; ++id) {
      label_[id] = Rational(code_[id]);
      range_lo_[id] = Rational(code_[id]);
      range_hi_[id] = Rational(subtree_max_[id] + 1);
    }
  }

  // Depths and subtree sizes (codes are preorder: children follow parents,
  // so a reverse pass accumulates sizes).
  for (Coord code = 0; code < static_cast<Coord>(c); ++code) {
    uint32_t id = code_to_class_[static_cast<size_t>(code)];
    depth_[id] = parent_[id] == kNoClass ? 0 : depth_[parent_[id]] + 1;
  }
  for (Coord code = static_cast<Coord>(c); code-- > 0;) {
    uint32_t id = code_to_class_[static_cast<size_t>(code)];
    if (parent_[id] != kNoClass) {
      subtree_size_[parent_[id]] += subtree_size_[id];
    }
  }
  frozen_ = true;
  return Status::OK();
}

bool ClassHierarchy::IsAncestorOrSelf(uint32_t ancestor,
                                      uint32_t descendant) const {
  return code_[descendant] >= code_[ancestor] &&
         code_[descendant] <= subtree_max_[ancestor];
}

std::vector<uint64_t> NaiveClassQuery(const ClassHierarchy& h,
                                      const std::vector<Object>& objects,
                                      uint32_t class_id, Coord a1, Coord a2) {
  std::vector<uint64_t> out;
  for (const Object& o : objects) {
    if (o.attr >= a1 && o.attr <= a2 &&
        h.IsAncestorOrSelf(class_id, o.class_id)) {
      out.push_back(o.id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ccidx
