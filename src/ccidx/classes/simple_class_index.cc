#include "ccidx/classes/simple_class_index.h"

#include <algorithm>
#include <optional>

#include "ccidx/classes/class_build_util.h"

namespace ccidx {

SimpleClassIndex::SimpleClassIndex(Pager* pager,
                                   const ClassHierarchy* hierarchy)
    : hierarchy_(hierarchy) {
  CCIDX_CHECK(hierarchy_ != nullptr && hierarchy_->frozen());
  // Build the balanced binary tree over [0, c). Node 0 is the root.
  BuildNode(0, static_cast<Coord>(hierarchy_->size()) - 1);
  trees_.reserve(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    trees_.emplace_back(pager);
  }
}

Result<SimpleClassIndex> SimpleClassIndex::Build(
    Pager* pager, const ClassHierarchy* hierarchy,
    RecordStream<Object>* objects) {
  if (hierarchy == nullptr || !hierarchy->frozen()) {
    return Status::InvalidArgument("hierarchy must be frozen");
  }
  SimpleClassIndex index(pager, hierarchy);
  AllocationScope scope(pager);
  internal::CollectionSorter sorter(pager);
  std::vector<size_t> path;
  uint64_t n = 0;
  while (true) {
    auto block = objects->Next();
    CCIDX_RETURN_IF_ERROR(block.status());
    if (block->empty()) break;
    for (const Object& o : *block) {
      if (o.class_id >= hierarchy->size()) {
        return Status::InvalidArgument("unknown class");
      }
      Coord code = hierarchy->code(o.class_id);
      path.clear();
      index.PathTo(code, &path);
      for (size_t node : path) {
        CCIDX_RETURN_IF_ERROR(sorter.Add({node, {o.attr, o.id, code}}));
      }
      n++;
    }
  }
  auto merged = sorter.Finish();
  CCIDX_RETURN_IF_ERROR(merged.status());
  CCIDX_RETURN_IF_ERROR(
      internal::LoadGroupedTrees(pager, *merged, &index.trees_));
  index.size_.store(n, std::memory_order_relaxed);
  scope.Commit();
  return index;
}

Result<SimpleClassIndex> SimpleClassIndex::Build(
    Pager* pager, const ClassHierarchy* hierarchy,
    std::span<const Object> objects) {
  SpanStream<Object> stream(objects);
  return Build(pager, hierarchy, &stream);
}

Result<SimpleClassIndex> SimpleClassIndex::Build(
    Pager* pager, const ClassHierarchy* hierarchy,
    std::vector<Object>&& objects) {
  return Build(pager, hierarchy, std::span<const Object>(objects));
}

size_t SimpleClassIndex::BuildNode(Coord lo, Coord hi) {
  size_t idx = nodes_.size();
  nodes_.push_back({lo, hi, 0, 0});
  if (lo < hi) {
    Coord mid = lo + (hi - lo) / 2;
    size_t left = BuildNode(lo, mid);
    size_t right = BuildNode(mid + 1, hi);
    nodes_[idx].left = left;
    nodes_[idx].right = right;
  }
  return idx;
}

void SimpleClassIndex::PathTo(Coord code, std::vector<size_t>* out) const {
  size_t node = 0;
  while (true) {
    out->push_back(node);
    const RangeNode& rn = nodes_[node];
    if (rn.lo == rn.hi) return;
    Coord mid = rn.lo + (rn.hi - rn.lo) / 2;
    node = code <= mid ? rn.left : rn.right;
  }
}

void SimpleClassIndex::Decompose(size_t node, Coord lo, Coord hi,
                                 std::vector<size_t>* out) const {
  const RangeNode& rn = nodes_[node];
  if (rn.lo > hi || rn.hi < lo) return;
  if (rn.lo >= lo && rn.hi <= hi) {
    out->push_back(node);
    return;
  }
  Decompose(rn.left, lo, hi, out);
  Decompose(rn.right, lo, hi, out);
}

Status SimpleClassIndex::Insert(const Object& o) {
  if (o.class_id >= hierarchy_->size()) {
    return Status::InvalidArgument("unknown class");
  }
  Coord code = hierarchy_->code(o.class_id);
  std::vector<size_t> path;
  PathTo(code, &path);
  for (size_t node : path) {
    CCIDX_RETURN_IF_ERROR(trees_[node].Insert(o.attr, o.id, code));
  }
  size_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status SimpleClassIndex::Delete(const Object& o, bool* found) {
  *found = false;
  if (o.class_id >= hierarchy_->size()) {
    return Status::InvalidArgument("unknown class");
  }
  Coord code = hierarchy_->code(o.class_id);
  std::vector<size_t> path;
  PathTo(code, &path);
  bool any = false, all = true;
  for (size_t node : path) {
    bool f = false;
    CCIDX_RETURN_IF_ERROR(trees_[node].Delete(o.attr, o.id, &f));
    any |= f;
    all &= f;
  }
  if (any && !all) {
    return Status::Corruption("object present in only part of its path");
  }
  if (any) {
    size_.fetch_sub(1, std::memory_order_relaxed);
    *found = true;
  }
  return Status::OK();
}

void SimpleClassIndex::WarmCanonicalRoots(
    const std::vector<size_t>& canonical) const {
  if (canonical.size() < 2 || trees_.empty()) return;
  Pager* pager = trees_[canonical[0]].pager();
  if (pager->speculation_budget() == 0) return;
  std::vector<PageId> roots;
  roots.reserve(canonical.size());
  for (size_t node : canonical) {
    PageId r = trees_[node].root();
    if (r != kInvalidPageId) roots.push_back(r);
  }
  if (roots.size() >= 2) pager->WarmMany(roots);
}

Status SimpleClassIndex::Query(uint32_t class_id, Coord a1, Coord a2,
                               ResultSink<uint64_t>* sink) const {
  if (class_id >= hierarchy_->size()) {
    return Status::InvalidArgument("unknown class");
  }
  std::vector<size_t> canonical;
  Decompose(0, hierarchy_->code(class_id),
            hierarchy_->subtree_max_code(class_id), &canonical);
  last_query_collections_.store(canonical.size(), std::memory_order_relaxed);
  WarmCanonicalRoots(canonical);
  TransformSink<BtEntry, uint64_t> xform(
      sink, [](const BtEntry& e) { return std::optional<uint64_t>(e.value); });
  for (size_t node : canonical) {
    if (xform.stopped()) break;
    CCIDX_RETURN_IF_ERROR(trees_[node].RangeScan(a1, a2, &xform));
  }
  return Status::OK();
}

Status SimpleClassIndex::Query(uint32_t class_id, Coord a1, Coord a2,
                               std::vector<uint64_t>* out) const {
  VectorSink<uint64_t> sink(out);
  return Query(class_id, a1, a2, &sink);
}

Status SimpleClassIndex::QueryObjects(uint32_t class_id, Coord a1, Coord a2,
                                      ResultSink<Object>* sink) const {
  if (class_id >= hierarchy_->size()) {
    return Status::InvalidArgument("unknown class");
  }
  std::vector<size_t> canonical;
  Decompose(0, hierarchy_->code(class_id),
            hierarchy_->subtree_max_code(class_id), &canonical);
  last_query_collections_.store(canonical.size(), std::memory_order_relaxed);
  WarmCanonicalRoots(canonical);
  TransformSink<BtEntry, Object> xform(sink, [this](const BtEntry& e) {
    return std::optional<Object>(
        Object{e.value, hierarchy_->class_at_code(e.aux), e.key});
  });
  for (size_t node : canonical) {
    if (xform.stopped()) break;
    CCIDX_RETURN_IF_ERROR(trees_[node].RangeScan(a1, a2, &xform));
  }
  return Status::OK();
}

Status SimpleClassIndex::QueryObjects(uint32_t class_id, Coord a1, Coord a2,
                                      std::vector<Object>* out) const {
  VectorSink<Object> sink(out);
  return QueryObjects(class_id, a1, a2, &sink);
}

}  // namespace ccidx
