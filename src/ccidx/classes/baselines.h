// Baseline class-indexing schemes from §2.2, used as comparators in
// experiments E5/E6.
//
//   * SingleIndexBaseline — one B+-tree over all objects; a query range-
//     scans by attribute and filters by class. Cannot compact a t-sized
//     output into t/B pages: the matching objects are interspersed with
//     everything else, so query I/O is O(log_B n + t_all/B) where t_all
//     counts all classes.
//   * FullExtentIndex — one B+-tree per class over its FULL extent.
//     Optimal queries O(log_B n + t/B), but an object is replicated once
//     per ancestor: space O((n/B) * depth) (Θ(c n/B) worst case) and
//     update O(depth * log_B n) (Lemma 4.2 when depth is constant).
//   * ExtentOnlyIndex — one B+-tree per class over its extent only (one
//     copy). Linear space and cheap updates, but a query must consult
//     every class of the subtree: O(s * log_B n + t/B) for subtree size s.

#ifndef CCIDX_CLASSES_BASELINES_H_
#define CCIDX_CLASSES_BASELINES_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "ccidx/bptree/bptree.h"
#include "ccidx/build/record_stream.h"
#include "ccidx/classes/hierarchy.h"

namespace ccidx {

/// One B+-tree over all objects; query-time class filtering.
///
/// Thread safety (all three baselines, DESIGN.md §7/§11): Query is const
/// and safe to run from any number of threads concurrently over one
/// shared Pager. Insert/Delete are N-writer safe *within a write epoch*:
/// they delegate to B+-trees (subtree-striped latches) and keep their own
/// size counters atomic. Build/Destroy still require full quiescence
/// (QueryExecutor::Quiesce; writers fan out via UpdateExecutor).
class SingleIndexBaseline {
 public:
  SingleIndexBaseline(Pager* pager, const ClassHierarchy* hierarchy);

  /// Bulk-builds via one external sort + B+-tree bulk load. Fault-atomic.
  static Result<SingleIndexBaseline> Build(Pager* pager,
                                           const ClassHierarchy* hierarchy,
                                           RecordStream<Object>* objects);
  static Result<SingleIndexBaseline> Build(Pager* pager,
                                           const ClassHierarchy* hierarchy,
                                           std::span<const Object> objects);

  Status Insert(const Object& o);
  Status Delete(const Object& o, bool* found);
  /// O(log_B n + t_all/B): scans every object in the attribute range.
  /// Note kStop cannot rescue the t_all/B term here: the scan still walks
  /// non-matching classes until enough matches surface.
  Status Query(uint32_t class_id, Coord a1, Coord a2,
               ResultSink<uint64_t>* sink) const;
  Status Query(uint32_t class_id, Coord a1, Coord a2,
               std::vector<uint64_t>* out) const;
  uint64_t size() const { return tree_.size(); }

 private:
  const ClassHierarchy* hierarchy_;
  BPlusTree tree_;  // key = attr, value = id, aux = class code
};

/// One B+-tree per class over the class's full extent.
class FullExtentIndex {
 public:
  FullExtentIndex(Pager* pager, const ClassHierarchy* hierarchy);

  // Movable (the atomic size counter requires spelling it out; moving is
  // a write, externally synchronized like all writes).
  FullExtentIndex(FullExtentIndex&& o) noexcept
      : hierarchy_(o.hierarchy_),
        trees_(std::move(o.trees_)),
        size_(o.size_.load(std::memory_order_relaxed)) {}
  FullExtentIndex& operator=(FullExtentIndex&& o) noexcept {
    hierarchy_ = o.hierarchy_;
    trees_ = std::move(o.trees_);
    size_.store(o.size_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    return *this;
  }

  /// Bulk-builds: one external sort of the per-ancestor replicas, then a
  /// bulk load per class tree. Fault-atomic.
  static Result<FullExtentIndex> Build(Pager* pager,
                                       const ClassHierarchy* hierarchy,
                                       RecordStream<Object>* objects);
  static Result<FullExtentIndex> Build(Pager* pager,
                                       const ClassHierarchy* hierarchy,
                                       std::span<const Object> objects);

  /// O(depth * log_B n) I/Os: inserts into every ancestor's tree.
  Status Insert(const Object& o);
  Status Delete(const Object& o, bool* found);
  /// Optimal O(log_B n + t/B): one tree holds exactly the answer superset.
  Status Query(uint32_t class_id, Coord a1, Coord a2,
               ResultSink<uint64_t>* sink) const;
  Status Query(uint32_t class_id, Coord a1, Coord a2,
               std::vector<uint64_t>* out) const;
  uint64_t size() const { return size_.load(std::memory_order_relaxed); }

 private:
  const ClassHierarchy* hierarchy_;
  std::vector<BPlusTree> trees_;  // one per class
  std::atomic<uint64_t> size_{0};
};

/// One B+-tree per class over the class's own extent (single copy).
class ExtentOnlyIndex {
 public:
  ExtentOnlyIndex(Pager* pager, const ClassHierarchy* hierarchy);

  // Movable (see FullExtentIndex).
  ExtentOnlyIndex(ExtentOnlyIndex&& o) noexcept
      : hierarchy_(o.hierarchy_),
        trees_(std::move(o.trees_)),
        size_(o.size_.load(std::memory_order_relaxed)) {}
  ExtentOnlyIndex& operator=(ExtentOnlyIndex&& o) noexcept {
    hierarchy_ = o.hierarchy_;
    trees_ = std::move(o.trees_);
    size_.store(o.size_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    return *this;
  }

  /// Bulk-builds: one external sort by (class, attr), then a bulk load
  /// per extent tree. Fault-atomic.
  static Result<ExtentOnlyIndex> Build(Pager* pager,
                                       const ClassHierarchy* hierarchy,
                                       RecordStream<Object>* objects);
  static Result<ExtentOnlyIndex> Build(Pager* pager,
                                       const ClassHierarchy* hierarchy,
                                       std::span<const Object> objects);

  /// O(log_B n) I/Os.
  Status Insert(const Object& o);
  Status Delete(const Object& o, bool* found);
  /// O(subtree_size * log_B n + t/B): one search per descendant class.
  /// kStop skips the remaining descendant classes.
  Status Query(uint32_t class_id, Coord a1, Coord a2,
               ResultSink<uint64_t>* sink) const;
  Status Query(uint32_t class_id, Coord a1, Coord a2,
               std::vector<uint64_t>* out) const;
  uint64_t size() const { return size_.load(std::memory_order_relaxed); }

 private:
  const ClassHierarchy* hierarchy_;
  std::vector<BPlusTree> trees_;
  std::atomic<uint64_t> size_{0};
};

}  // namespace ccidx

#endif  // CCIDX_CLASSES_BASELINES_H_
