#include "ccidx/io/pager.h"

#include <cstring>

namespace ccidx {

Pager::Pager(BlockDevice* device, uint32_t capacity_pages)
    : device_(device), capacity_(capacity_pages) {
  CCIDX_CHECK(device_ != nullptr);
}

Pager::~Pager() {
  // Best-effort flush; errors here indicate test teardown after device
  // destruction misuse, which CCIDX_CHECK would have caught earlier.
  Flush().ok();
}

PageId Pager::Allocate() {
  PageId id = device_->Allocate();
  if (capacity_ == 0) return id;
  // Freshly allocated pages are zeroed on the device; cache a zero copy so
  // the first write does not need a device read.
  auto result = GetFrame(id, /*load_from_device=*/false);
  CCIDX_CHECK(result.ok());
  return id;
}

Status Pager::Free(PageId id) {
  auto it = index_.find(id);
  if (it != index_.end()) {
    lru_.erase(it->second);
    index_.erase(it);
  }
  return device_->Free(id);
}

Result<Pager::Frame*> Pager::GetFrame(PageId id, bool load_from_device) {
  auto it = index_.find(id);
  if (it != index_.end()) {
    hits_++;
    // Move to front (most recently used).
    lru_.splice(lru_.begin(), lru_, it->second);
    return &*lru_.begin();
  }
  misses_++;
  CCIDX_RETURN_IF_ERROR(EvictIfFull());
  Frame frame;
  frame.id = id;
  frame.dirty = !load_from_device;
  frame.data = std::make_unique<uint8_t[]>(device_->page_size());
  if (load_from_device) {
    CCIDX_RETURN_IF_ERROR(
        device_->Read(id, {frame.data.get(), device_->page_size()}));
  } else {
    std::memset(frame.data.get(), 0, device_->page_size());
  }
  lru_.push_front(std::move(frame));
  index_[id] = lru_.begin();
  return &*lru_.begin();
}

Status Pager::EvictIfFull() {
  while (lru_.size() >= capacity_) {
    Frame& victim = lru_.back();
    CCIDX_RETURN_IF_ERROR(WriteBack(victim));
    index_.erase(victim.id);
    lru_.pop_back();
  }
  return Status::OK();
}

Status Pager::WriteBack(Frame& frame) {
  if (!frame.dirty) return Status::OK();
  CCIDX_RETURN_IF_ERROR(
      device_->Write(frame.id, {frame.data.get(), device_->page_size()}));
  frame.dirty = false;
  return Status::OK();
}

Status Pager::Read(PageId id, std::span<uint8_t> out) {
  if (out.size() != device_->page_size()) {
    return Status::InvalidArgument("pager read buffer size mismatch");
  }
  if (capacity_ == 0) return device_->Read(id, out);
  auto frame = GetFrame(id, /*load_from_device=*/true);
  CCIDX_RETURN_IF_ERROR(frame.status());
  std::memcpy(out.data(), (*frame)->data.get(), device_->page_size());
  return Status::OK();
}

Status Pager::Write(PageId id, std::span<const uint8_t> in) {
  if (in.size() != device_->page_size()) {
    return Status::InvalidArgument("pager write buffer size mismatch");
  }
  if (capacity_ == 0) return device_->Write(id, in);
  auto frame = GetFrame(id, /*load_from_device=*/false);
  CCIDX_RETURN_IF_ERROR(frame.status());
  std::memcpy((*frame)->data.get(), in.data(), device_->page_size());
  (*frame)->dirty = true;
  return Status::OK();
}

Status Pager::Flush() {
  for (Frame& frame : lru_) {
    CCIDX_RETURN_IF_ERROR(WriteBack(frame));
  }
  return Status::OK();
}

Status Pager::DropCache() {
  CCIDX_RETURN_IF_ERROR(Flush());
  lru_.clear();
  index_.clear();
  return Status::OK();
}

IoStats Pager::CombinedStats() const {
  IoStats s = device_->stats();
  s.cache_hits = hits_;
  s.cache_misses = misses_;
  return s;
}

void Pager::ResetStats() {
  device_->stats().Reset();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace ccidx
