#include "ccidx/io/pager.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <new>
#include <thread>

#include "ccidx/io/wal.h"

namespace ccidx {

namespace {

// Minimum frames a shard must keep for sharding to be worth it: below
// this, splitting the pool would concentrate pin pressure (a pin set far
// smaller than the pool could exhaust one shard), so small pools collapse
// to one shard and behave exactly like the historical single pool
// (pager_pin_test semantics). 64 also covers the external sorter's merge
// fan-in (~B simultaneous run pins) for the default O(B^2) budget: at
// capacity >= 2 shards x 64 frames the fan-in can no longer fill a shard.
constexpr uint32_t kMinFramesPerShard = 64;

// splitmix64 finalizer: page ids are sequential, so the bits must be well
// mixed before use. The low bits select the shard; the high bits are the
// open-addressed table home (the two must be independent — every id in a
// shard shares the low bits).
inline uint64_t MixPageId(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

// ---------------------------------------------------------------------------
// PageRef / MutPageRef
// ---------------------------------------------------------------------------

void PageRef::Release() {
  if (!valid()) return;
  if (frame_ != nullptr) {
    // Lock-free unpin: a read pin releases with a single atomic decrement,
    // no shard lock. The release order pairs with the eviction sweep's
    // acquire load, so a frame observed unpinned is safe to reuse.
    Pager* pager = pager_;
    uint32_t prev = frame_->pins.fetch_sub(1, std::memory_order_release);
    CCIDX_CHECK(prev > 0);
    // A frame just went evictable: re-stage any warm hints that were
    // parked while the pool was pin-saturated (one relaxed load when
    // nothing is parked — the hot path stays lock-free).
    if (prev == 1) pager->ReviveDeferredPrefetches();
  } else {
    // Transient read pin: recycle the arena slot (or drop the heap
    // fallback). No I/O.
    pager_->ReleaseTransient(transient_slot_);
    transient_heap_.reset();
    pager_->transient_outstanding_.fetch_sub(1, std::memory_order_relaxed);
  }
  pager_ = nullptr;
  frame_ = nullptr;
  transient_slot_ = -1;
  data_ = nullptr;
}

MutPageRef& MutPageRef::operator=(MutPageRef&& o) noexcept {
  if (this != &o) {
    ReleaseToDeferred();
    MoveFrom(o);
  }
  return *this;
}

MutPageRef::~MutPageRef() { ReleaseToDeferred(); }

void MutPageRef::ReleaseToDeferred() {
  if (!valid()) return;
  // Destructor-path release: a transient write-back failure here cannot be
  // returned, so it is parked as the pager's deferred error and surfaced
  // by the next Flush()/DropCache().
  Pager* pager = pager_;
  Status s = Release();
  if (!s.ok()) pager->RecordDeferredError(std::move(s));
}

Status MutPageRef::Release() {
  if (!valid()) return Status::OK();
  Pager* pager = pager_;
  uint8_t* buf = data_;
  pager_ = nullptr;
  data_ = nullptr;
  if (frame_ != nullptr) {
    // Lock-free unpin, mut count first so an observer that sees pins == 0
    // also sees mut_pins == 0.
    uint32_t prev_mut =
        frame_->mut_pins.fetch_sub(1, std::memory_order_release);
    CCIDX_CHECK(prev_mut > 0);
    uint32_t prev = frame_->pins.fetch_sub(1, std::memory_order_release);
    CCIDX_CHECK(prev > 0);
    frame_ = nullptr;
    if (prev == 1) pager->ReviveDeferredPrefetches();
    return Status::OK();
  }
  // Uncached: the page lives only in this handle; write it back now so the
  // caller sees the device Status (the historical Write() behavior).
  // WAL-before-data: the log records covering this page must be durable
  // before its data write can reach the device (DESIGN.md §13).
  Status s = pager->wal_ != nullptr ? pager->wal_->SyncBeforeData()
                                    : Status::OK();
  if (s.ok()) s = pager->device_->Write(id_, {buf, size_});
  pager->ReleaseTransient(transient_slot_);
  transient_slot_ = -1;
  transient_heap_.reset();
  pager->transient_outstanding_.fetch_sub(1, std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// Pager: construction and shard layout
// ---------------------------------------------------------------------------

uint32_t Pager::PickShardCount(uint32_t capacity_pages) {
  if (capacity_pages < 2 * kMinFramesPerShard) return 1;
  // CCIDX_PAGER_SHARDS pins the shard count (rounded to a power of two,
  // capped by capacity) for experiments that must produce identical
  // cached eviction patterns across machines with different core counts.
  uint32_t target = 0;
  if (const char* env = std::getenv("CCIDX_PAGER_SHARDS")) {
    long v = std::strtol(env, nullptr, 10);
    if (v > 0) target = std::bit_ceil(static_cast<uint32_t>(v));
  }
  if (target == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 1;
    target = std::bit_ceil(4 * hw);
  }
  uint32_t by_capacity = 1;
  while (by_capacity * 2 * kMinFramesPerShard <= capacity_pages) {
    by_capacity <<= 1;
  }
  return std::min(target, by_capacity);
}

Pager::Pager(BlockDevice* device, uint32_t capacity_pages)
    : device_(device), capacity_(capacity_pages) {
  CCIDX_CHECK(device_ != nullptr);
  num_shards_ = PickShardCount(capacity_);
  shard_mask_ = num_shards_ - 1;
  // Readahead is only meaningful with a pool to land frames in; uncached
  // pagers must keep the exact historical cost model (every test that
  // counts I/Os relies on it). CCIDX_PREFETCH=0 disables the hint
  // globally for differential prefetch-on/off replays.
  const char* prefetch_env = std::getenv("CCIDX_PREFETCH");
  prefetch_enabled_ =
      capacity_ > 0 &&
      !(prefetch_env != nullptr && std::strcmp(prefetch_env, "0") == 0);
  // Speculation (WarmMany, speculative descent fetches) turns on only when
  // overlapping device requests actually buys latency: injected per-read
  // delay or real kernel I/O. A zero-latency in-memory device stays in
  // cost-model mode, where a speculative read would *add* counted I/Os —
  // so there it is structurally impossible, not just disabled.
  overlap_enabled_ = prefetch_enabled_ &&
                     (device_->read_latency_us() > 0 || device_->real_io());
  if (overlap_enabled_) {
    base_spec_budget_ = 4;
    if (const char* env = std::getenv("CCIDX_SPEC_BUDGET")) {
      long v = std::strtol(env, nullptr, 10);
      if (v >= 0) base_spec_budget_ = static_cast<uint32_t>(v);
    }
    spec_budget_.store(base_spec_budget_, std::memory_order_relaxed);
  }

  // One contiguous page-aligned arena for every frame. Strides are
  // cache-line rounded so adjacent frames never false-share.
  frame_stride_ =
      (static_cast<size_t>(device_->page_size()) + 63) & ~size_t{63};
  uint32_t arena_frames = capacity_ > 0 ? capacity_ : kTransientArenaFrames;
  arena_bytes_ = frame_stride_ * arena_frames;
  arena_ = static_cast<uint8_t*>(
      ::operator new(arena_bytes_, std::align_val_t{4096}));

  shards_ = std::make_unique<Shard[]>(num_shards_);
  if (capacity_ > 0) {
    uint32_t base = capacity_ / num_shards_;
    uint32_t rem = capacity_ % num_shards_;
    uint32_t next_arena_slot = 0;
    for (uint32_t i = 0; i < num_shards_; ++i) {
      Shard& shard = shards_[i];
      shard.capacity = base + (i < rem ? 1 : 0);
      shard.frames = std::make_unique<Frame[]>(shard.capacity);
      // >= 2x capacity keeps open-addressing load factor <= 1/2.
      uint32_t table_size = std::bit_ceil(std::max(4u, 2 * shard.capacity));
      shard.table.assign(table_size, -1);
      shard.table_mask = table_size - 1;
      shard.free_slots.reserve(shard.capacity);
      for (uint32_t s = 0; s < shard.capacity; ++s) {
        shard.frames[s].data = arena_ + frame_stride_ * next_arena_slot++;
        // Reverse so slot 0 is handed out first (matches fill order).
        shard.free_slots.push_back(shard.capacity - 1 - s);
      }
    }
  } else {
    // Uncached mode: the arena backs recycled transient buffers instead.
    transient_free_.reserve(kTransientArenaFrames);
    for (uint32_t s = 0; s < kTransientArenaFrames; ++s) {
      transient_free_.push_back(kTransientArenaFrames - 1 - s);
    }
  }
}

Pager::~Pager() {
  // Stop the readahead pool first: workers touch shard state and the
  // arena, so they must be joined before anything is torn down.
  {
    std::lock_guard lock(prefetch_mu_);
    prefetch_stop_ = true;
  }
  prefetch_cv_.notify_all();
  for (std::thread& t : prefetch_threads_) t.join();
  // All pins must be released before the pool is torn down: a live handle
  // would point into freed frames.
  CCIDX_CHECK(outstanding_pins() == 0);
  // Best-effort flush. A destructor cannot surface a Status, so both a
  // flush failure and a still-parked deferred error die here — callers
  // that care about durability must Flush() (and check it) before
  // destroying the pager.
  Flush().ok();
  ::operator delete(arena_, std::align_val_t{4096});
}

// ---------------------------------------------------------------------------
// Open-addressed page table (per shard, under the shard lock)
// ---------------------------------------------------------------------------

uint32_t Pager::ProbeLocked(const Shard& shard, PageId id,
                            uint64_t hash) const {
  const uint32_t mask = shard.table_mask;
  uint32_t pos = static_cast<uint32_t>(hash >> 32) & mask;
  for (;;) {
    int32_t slot = shard.table[pos];
    if (slot < 0 || shard.frames[slot].id == id) return pos;
    pos = (pos + 1) & mask;
  }
}

void Pager::TableEraseLocked(Shard& shard, uint32_t pos) {
  // Backshift deletion (linear probing without tombstones): walk the
  // cluster after the hole and move back every entry whose home position
  // does not lie cyclically inside (hole, current].
  const uint32_t mask = shard.table_mask;
  shard.table[pos] = -1;
  uint32_t hole = pos;
  uint32_t j = pos;
  for (;;) {
    j = (j + 1) & mask;
    int32_t slot = shard.table[j];
    if (slot < 0) return;
    uint32_t home =
        static_cast<uint32_t>(MixPageId(shard.frames[slot].id) >> 32) & mask;
    if (((j - home) & mask) >= ((j - hole) & mask)) {
      shard.table[hole] = slot;
      shard.table[j] = -1;
      hole = j;
    }
  }
}

// ---------------------------------------------------------------------------
// AllocationScope
// ---------------------------------------------------------------------------

void Pager::RecordAllocation(PageId id) {
  std::lock_guard lock(alloc_scopes_mu_);
  // Allocations land in the calling thread's innermost scope only:
  // concurrent writers' scoped builds stay disjoint by construction.
  auto it = alloc_scopes_.find(std::this_thread::get_id());
  if (it != alloc_scopes_.end() && !it->second.empty()) {
    it->second.back().insert(id);
  }
}

void Pager::ForgetAllocation(PageId id) {
  std::lock_guard lock(alloc_scopes_mu_);
  // A page is recorded in at most one scope; erase wherever it lives
  // (frees may run on a different thread than the allocating scope).
  for (auto& [tid, stack] : alloc_scopes_) {
    for (auto& scope : stack) {
      if (scope.erase(id) > 0) return;
    }
  }
}

AllocationScope::AllocationScope(Pager* pager)
    : pager_(pager), tid_(std::this_thread::get_id()) {
  std::lock_guard lock(pager_->alloc_scopes_mu_);
  auto& stack = pager_->alloc_scopes_[tid_];
  depth_ = stack.size();
  stack.emplace_back();
}

std::vector<PageId> AllocationScope::pages() const {
  std::lock_guard lock(pager_->alloc_scopes_mu_);
  auto it = pager_->alloc_scopes_.find(tid_);
  CCIDX_CHECK(it != pager_->alloc_scopes_.end() &&
              depth_ < it->second.size());
  const std::unordered_set<PageId>& set = it->second[depth_];
  return std::vector<PageId>(set.begin(), set.end());
}

AllocationScope::~AllocationScope() {
  CCIDX_CHECK(tid_ == std::this_thread::get_id());
  std::unordered_set<PageId> pages;
  {
    std::lock_guard lock(pager_->alloc_scopes_mu_);
    auto it = pager_->alloc_scopes_.find(tid_);
    CCIDX_CHECK(it != pager_->alloc_scopes_.end() && !it->second.empty());
    auto& stack = it->second;
    pages = std::move(stack.back());
    stack.pop_back();
    if (committed_) {
      // Fold into the enclosing scope (if any) so an outer rollback still
      // covers these pages.
      if (!stack.empty()) {
        stack.back().merge(pages);
      } else {
        pager_->alloc_scopes_.erase(it);
      }
      return;
    }
    if (stack.empty()) pager_->alloc_scopes_.erase(it);
  }
  // Rollback: free every recorded page that is still live. Free() needs
  // no device transfer, so this succeeds under active fault injection.
  for (PageId id : pages) {
    (void)pager_->Free(id);
  }
}

void AllocationScope::Commit() { committed_ = true; }

// ---------------------------------------------------------------------------
// Frame acquisition: hits, misses, clock eviction
// ---------------------------------------------------------------------------

Result<uint32_t> Pager::EvictSlotLocked(Shard& shard) {
  // Clock / second-chance sweep, resuming from the hand position left by
  // the previous eviction (never an O(capacity) restart). Two full
  // rotations suffice: the first pass clears reference bits, so the
  // second pass must take the first unpinned frame — if none was found,
  // every frame is pinned.
  const uint32_t n = shard.capacity;
  for (uint32_t step = 0; step < 2 * n; ++step) {
    uint32_t slot = shard.hand;
    shard.hand = (shard.hand + 1 == n) ? 0 : shard.hand + 1;
    Frame& frame = shard.frames[slot];
    if (frame.id == kInvalidPageId) continue;  // unoccupied slot
    // Pairs with the lock-free release decrement; pin *increments* only
    // happen under this shard's lock, so an unpinned frame stays
    // unpinned for the rest of the sweep.
    if (frame.pins.load(std::memory_order_acquire) > 0) continue;
    if (frame.referenced) {
      frame.referenced = false;  // second chance
      continue;
    }
    CCIDX_RETURN_IF_ERROR(WriteBack(frame));
    TableEraseLocked(shard,
                     ProbeLocked(shard, frame.id, MixPageId(frame.id)));
    frame.id = kInvalidPageId;
    frame.dirty = false;
    return slot;
  }
  return Status::ResourceExhausted(
      "all buffer-pool frames are pinned (shard capacity " +
      std::to_string(n) + " of " + std::to_string(capacity_) + ")");
}

Status Pager::WriteBack(Frame& frame) {
  if (!frame.dirty) return Status::OK();
  // WAL-before-data (DESIGN.md §13): every log record appended so far must
  // be durable before a data page can reach the device. One relaxed check
  // when nothing is pending.
  if (wal_ != nullptr) CCIDX_RETURN_IF_ERROR(wal_->SyncBeforeData());
  CCIDX_RETURN_IF_ERROR(
      device_->Write(frame.id, {frame.data, device_->page_size()}));
  // Under an active writer the frame must stay dirty: the pin holder may
  // modify the span after this write-back.
  if (frame.mut_pins.load(std::memory_order_acquire) == 0) {
    frame.dirty = false;
  }
  return Status::OK();
}

Result<Pager::Frame*> Pager::GetFrameLocked(Shard& shard, PageId id,
                                            uint64_t hash, MutMode mode) {
  uint32_t pos = ProbeLocked(shard, id, hash);
  int32_t hit_slot = shard.table[pos];
  if (hit_slot >= 0) {
    Frame& frame = shard.frames[hit_slot];
    if (mode == MutMode::kOverwrite &&
        frame.pins.load(std::memory_order_acquire) > 0) {
      // Zero-filling the frame would mutate the page under live views.
      return Status::FailedPrecondition("overwrite of pinned page " +
                                        std::to_string(id));
    }
    shard.hits++;
    frame.referenced = true;  // clock: a warm hit touches one flag, no list
    if (mode == MutMode::kOverwrite) {
      // Caller rewrites the page; start from deterministic zeros exactly as
      // the historical copy-based Write did.
      std::memset(frame.data, 0, device_->page_size());
    }
    return &frame;
  }
  shard.misses++;
  uint32_t slot;
  if (!shard.free_slots.empty()) {
    slot = shard.free_slots.back();
    shard.free_slots.pop_back();
  } else {
    auto victim = EvictSlotLocked(shard);
    CCIDX_RETURN_IF_ERROR(victim.status());
    slot = *victim;
    // The eviction's backshift may have moved table entries; re-probe for
    // the (still absent) id's insertion point.
    pos = ProbeLocked(shard, id, hash);
  }
  Frame& frame = shard.frames[slot];
  frame.id = id;
  frame.dirty = (mode == MutMode::kOverwrite);
  frame.referenced = true;
  if (mode == MutMode::kLoad) {
    Status s = device_->Read(id, {frame.data, device_->page_size()});
    if (!s.ok()) {
      // Nothing was inserted into the table yet; just return the slot.
      frame.id = kInvalidPageId;
      frame.dirty = false;
      frame.referenced = false;
      shard.free_slots.push_back(slot);
      return s;
    }
  } else {
    std::memset(frame.data, 0, device_->page_size());
  }
  shard.table[pos] = static_cast<int32_t>(slot);
  return &frame;
}

// ---------------------------------------------------------------------------
// Public pin / allocate / free surface
// ---------------------------------------------------------------------------

PageId Pager::Allocate() {
  PageId id = device_->Allocate();
  RecordAllocation(id);
  if (wal_ != nullptr) WalOnAlloc(id);
  if (capacity_ == 0) return id;
  // Freshly allocated pages are zeroed on the device; cache a zero copy so
  // the first write does not need a device read. Best-effort: if no frame
  // can be claimed right now (e.g. every frame is pinned), the page simply
  // starts uncached — it already exists zeroed on the device.
  uint64_t hash = MixPageId(id);
  Shard& shard = shards_[static_cast<uint32_t>(hash) & shard_mask_];
  std::lock_guard lock(shard.mu);
  auto result = GetFrameLocked(shard, id, hash, MutMode::kOverwrite);
  if (result.ok()) (*result)->dirty = true;
  return id;
}

Status Pager::Free(PageId id) {
  WalTxn* txn = wal_ != nullptr ? CurrentWalTxn() : nullptr;
  bool txn_allocated = false;
  std::vector<uint8_t> before_image;
  if (txn != nullptr) {
    txn_allocated = txn->allocated.contains(id);
    if (!txn_allocated) {
      // Pre-existing page: snapshot its current (possibly dirty-in-pool)
      // content now, before the cached frame is dropped below. The free
      // record is logged only after the pinned-page precondition passes.
      auto ref = Pin(id);
      if (!ref.ok()) return ref.status();
      std::span<const uint8_t> data = ref->data();
      before_image.assign(data.begin(), data.end());
    }
  }
  if (capacity_ > 0) {
    uint64_t hash = MixPageId(id);
    Shard& shard = shards_[static_cast<uint32_t>(hash) & shard_mask_];
    std::lock_guard lock(shard.mu);
    uint32_t pos = ProbeLocked(shard, id, hash);  // the only lookup
    int32_t slot = shard.table[pos];
    if (slot >= 0) {
      Frame& frame = shard.frames[slot];
      if (frame.pins.load(std::memory_order_acquire) > 0) {
        return Status::FailedPrecondition("free of pinned page " +
                                          std::to_string(id));
      }
      frame.id = kInvalidPageId;
      frame.dirty = false;
      frame.referenced = false;
      shard.free_slots.push_back(static_cast<uint32_t>(slot));
      TableEraseLocked(shard, pos);
    }
  }
  if (txn != nullptr) {
    if (txn_allocated) {
      // Allocated by this very transaction: an imageless free record
      // suffices (committed replay marks it freed; uncommitted undo leaves
      // it unallocated) and the device free can happen now — nobody
      // outside this txn can have observed the page.
      txn->allocated.erase(id);
      txn->captured.erase(id);
      CCIDX_RETURN_IF_ERROR(txn->wal->LogFree(txn->id, id, {}));
    } else {
      // Pre-existing page: log its before-image (recovery must restore it
      // if this txn does not commit) and DEFER the device-level free to
      // scope exit — a committing transaction must not reallocate and
      // overwrite a page whose free is not yet durable (class comment on
      // WalScope). The cached copy was dropped above; reads of a freed
      // page are a caller bug either way.
      CCIDX_RETURN_IF_ERROR(txn->wal->LogFree(txn->id, id, before_image));
      txn->deferred_frees.push_back(id);
      return Status::OK();
    }
  }
  Status s = device_->Free(id);
  if (s.ok()) ForgetAllocation(id);
  // A freed slot is new capacity: ask a prefetch worker to re-stage the
  // parked warm hints. Signal-only — Free's callers hold structure
  // latches (ExternalPst commits free under root_mu, Dynamized installs
  // free under levels_mu + buffer_mu), so the staging pass (dedupe,
  // residency probes, shard locks) must not run inline here.
  if (s.ok() && capacity_ > 0) RequestReviveAsync();
  return s;
}

Result<PageRef> Pager::Pin(PageId id) {
  PageRef ref;
  ref.id_ = id;
  ref.size_ = device_->page_size();
  if (capacity_ == 0) {
    transient_pin_requests_.fetch_add(1, std::memory_order_relaxed);
    int32_t slot = -1;
    std::unique_ptr<uint8_t[]> heap;
    uint8_t* buf = AcquireTransient(&slot, &heap);
    Status s = device_->Read(id, {buf, ref.size_});
    if (!s.ok()) {
      ReleaseTransient(slot);
      return s;
    }
    ref.data_ = buf;
    ref.transient_heap_ = std::move(heap);
    ref.transient_slot_ = slot;
    ref.pager_ = this;
    transient_outstanding_.fetch_add(1, std::memory_order_relaxed);
    return ref;
  }
  // If a prefetch of this very page is queued or in flight, wait for it to
  // land instead of issuing a second device read: the prefetch workers
  // read outside the shard lock, so without this the pin would race the
  // in-flight load and double-count the transfer.
  if (prefetch_pending_count_.load(std::memory_order_relaxed) > 0) {
    WaitPrefetchDone(id);
  }
  uint64_t hash = MixPageId(id);
  uint32_t shard_idx = static_cast<uint32_t>(hash) & shard_mask_;
  Shard& shard = shards_[shard_idx];
  {
    std::lock_guard lock(shard.mu);
    shard.pin_requests++;
    auto frame = GetFrameLocked(shard, id, hash, MutMode::kLoad);
    if (frame.ok()) {
      (*frame)->pins.fetch_add(1, std::memory_order_relaxed);
      ref.frame_ = *frame;
      ref.data_ = (*frame)->data;
      ref.pager_ = this;
      return ref;
    }
    if (frame.status().code() != StatusCode::kResourceExhausted) {
      return frame.status();
    }
  }
  // The home shard is fully pinned. If the *pool* is fully pinned, that
  // is the caller's error (the historical contract); but while other
  // shards still have capacity, a read pin degrades gracefully to a
  // private transient copy instead of failing — the page missed, so the
  // device copy is current (any dirtier version would be resident), and
  // the handle releases through the transient path like an uncached pin.
  if (!AnyOtherShardHasCapacity(shard_idx)) {
    return Status::ResourceExhausted(
        "all buffer-pool frames are pinned (capacity " +
        std::to_string(capacity_) + ")");
  }
  int32_t slot = -1;
  std::unique_ptr<uint8_t[]> heap;
  uint8_t* buf = AcquireTransient(&slot, &heap);
  Status s = device_->Read(id, {buf, ref.size_});
  if (!s.ok()) {
    ReleaseTransient(slot);
    return s;
  }
  ref.data_ = buf;
  ref.transient_heap_ = std::move(heap);
  ref.transient_slot_ = slot;
  ref.pager_ = this;
  transient_outstanding_.fetch_add(1, std::memory_order_relaxed);
  return ref;
}

// ---------------------------------------------------------------------------
// Batched loading: PinMany / WarmMany (DESIGN.md §10)
// ---------------------------------------------------------------------------

PageRef Pager::PoolRef(PageId id, Frame* frame) {
  PageRef ref;
  ref.id_ = id;
  ref.size_ = device_->page_size();
  ref.frame_ = frame;
  ref.data_ = frame->data;
  ref.pager_ = this;
  return ref;
}

PageRef Pager::TransientRefFromHeap(PageId id,
                                    std::unique_ptr<uint8_t[]> buf) {
  PageRef ref;
  ref.id_ = id;
  ref.size_ = device_->page_size();
  ref.data_ = buf.get();
  ref.transient_heap_ = std::move(buf);
  ref.transient_slot_ = -1;
  ref.pager_ = this;
  transient_outstanding_.fetch_add(1, std::memory_order_relaxed);
  return ref;
}

Status Pager::BatchLoadResident(std::span<const PageId> ids,
                                std::vector<PageRef>* out) {
  const bool pin = out != nullptr;
  const uint32_t page_size = device_->page_size();
  if (pin) {
    out->clear();
    out->resize(ids.size());
  }
  std::vector<MissEntry> misses;
  // Output index -> index into `misses` filling it; -1 = phase-A hit.
  std::vector<int32_t> miss_of;
  if (pin) miss_of.assign(ids.size(), -1);

  // Phase A: pin hits under shard locks; collect distinct misses.
  for (size_t i = 0; i < ids.size(); ++i) {
    PageId id = ids[i];
    if (id == kInvalidPageId) {
      if (pin) return Status::InvalidArgument("pin of invalid page id");
      continue;
    }
    int32_t dup = -1;
    for (size_t m = 0; m < misses.size(); ++m) {
      if (misses[m].id == id) {
        dup = static_cast<int32_t>(m);
        break;
      }
    }
    uint64_t hash = MixPageId(id);
    uint32_t shard_idx = static_cast<uint32_t>(hash) & shard_mask_;
    Shard& shard = shards_[shard_idx];
    std::lock_guard lock(shard.mu);
    if (pin) shard.pin_requests++;
    uint32_t pos = ProbeLocked(shard, id, hash);
    int32_t slot = shard.table[pos];
    if (slot >= 0) {
      Frame& frame = shard.frames[slot];
      shard.hits++;
      frame.referenced = true;
      if (pin) {
        frame.pins.fetch_add(1, std::memory_order_relaxed);
        (*out)[i] = PoolRef(id, &frame);
      }
      continue;
    }
    if (dup >= 0) {
      // Serial equivalence: the second pin of a page this batch already
      // fetches would hit the frame the first pin loaded.
      shard.hits++;
      if (pin) miss_of[i] = dup;
      continue;
    }
    shard.misses++;
    misses.push_back(
        {id, shard_idx, hash, std::make_unique<uint8_t[]>(page_size)});
    if (pin) miss_of[i] = static_cast<int32_t>(misses.size()) - 1;
  }
  if (misses.empty()) return Status::OK();

  // Phase B: one concurrent device round-trip into scratch buffers, with
  // no lock held — device latency here never blocks a foreground pin.
  std::vector<PageReadRequest> reqs;
  reqs.reserve(misses.size());
  for (const MissEntry& m : misses) reqs.push_back({m.id, m.buf.get()});
  Status read_status = device_->ReadBatch(reqs);
  if (!read_status.ok()) {
    if (pin) out->clear();  // unwinds every phase-A pin
    return read_status;
  }

  // Pin mode: how many output slots each miss fills (duplicate ids).
  std::vector<uint32_t> uses;
  if (pin) {
    uses.assign(misses.size(), 0);
    for (int32_t m : miss_of) {
      if (m >= 0) uses[m]++;
    }
  }

  // Phase C: install each loaded page under its shard lock, re-probing
  // first — another thread may have loaded it since phase A, in which
  // case the scratch copy is discarded. Pins are taken under the same
  // lock acquisition that installs the frame, so the eviction sweep can
  // never reclaim it in between.
  std::vector<Frame*> installed(misses.size(), nullptr);
  for (size_t m = 0; m < misses.size(); ++m) {
    MissEntry& e = misses[m];
    Shard& shard = shards_[e.shard_idx];
    {
      std::lock_guard lock(shard.mu);
      uint32_t pos = ProbeLocked(shard, e.id, e.hash);
      int32_t slot = shard.table[pos];
      Frame* frame = nullptr;
      if (slot >= 0) {
        frame = &shard.frames[slot];
        frame->referenced = true;
      } else {
        uint32_t claimed = 0;
        bool have = false;
        if (!shard.free_slots.empty()) {
          claimed = shard.free_slots.back();
          shard.free_slots.pop_back();
          have = true;
        } else {
          auto victim = EvictSlotLocked(shard);
          if (victim.ok()) {
            claimed = *victim;
            // The eviction's backshift may have moved table entries.
            pos = ProbeLocked(shard, e.id, e.hash);
            have = true;
          } else if (victim.status().code() !=
                     StatusCode::kResourceExhausted) {
            // A dirty victim's write-back failed: a real device error.
            if (pin) out->clear();
            return victim.status();
          }
          // ResourceExhausted: fall through to the transient/drop path.
        }
        if (have) {
          frame = &shard.frames[claimed];
          frame->id = e.id;
          frame->dirty = false;
          frame->referenced = true;
          std::memcpy(frame->data, e.buf.get(), page_size);
          shard.table[pos] = static_cast<int32_t>(claimed);
        }
      }
      if (frame != nullptr) {
        if (pin && uses[m] > 0) {
          frame->pins.fetch_add(uses[m], std::memory_order_relaxed);
        }
        installed[m] = frame;
      }
    }
    if (installed[m] == nullptr && !pin) {
      // Warm hint with a pin-saturated home shard: park it for the
      // clock-hand feed — the next pin release or Free re-stages it —
      // instead of dropping the already-paid read's locality hint.
      DeferPrefetch(e.id);
      continue;
    }
    if (installed[m] != nullptr || !pin) continue;
    // Home shard pin-saturated: degrade to transient handles over the
    // already-read scratch bytes (Pin's contract, at the same device
    // cost), unless the whole pool is pinned.
    if (!AnyOtherShardHasCapacity(e.shard_idx)) {
      out->clear();
      return Status::ResourceExhausted(
          "all buffer-pool frames are pinned (capacity " +
          std::to_string(capacity_) + ")");
    }
  }
  if (!pin) return Status::OK();

  // Fill the outputs that waited on a miss.
  std::vector<const uint8_t*> transient_src(misses.size(), nullptr);
  for (size_t i = 0; i < ids.size(); ++i) {
    int32_t m = miss_of[i];
    if (m < 0) continue;
    Frame* frame = installed[m];
    if (frame != nullptr) {
      (*out)[i] = PoolRef(ids[i], frame);  // pins pre-counted via uses[m]
      continue;
    }
    std::unique_ptr<uint8_t[]> buf;
    if (misses[m].buf != nullptr) {
      buf = std::move(misses[m].buf);
    } else {
      // A duplicate landed transient: every handle owns its buffer.
      buf = std::make_unique<uint8_t[]>(page_size);
      std::memcpy(buf.get(), transient_src[m], page_size);
    }
    transient_src[m] = buf.get();
    (*out)[i] = TransientRefFromHeap(ids[i], std::move(buf));
  }
  return Status::OK();
}

Result<std::vector<PageRef>> Pager::PinMany(std::span<const PageId> ids) {
  std::vector<PageRef> out;
  if (ids.empty()) return out;
  if (capacity_ == 0) {
    // Uncached: one transient read per request — exactly the cost of a
    // loop of Pin — issued as a single concurrent device batch.
    const uint32_t page_size = device_->page_size();
    out.resize(ids.size());
    std::vector<int32_t> slots(ids.size(), -1);
    std::vector<std::unique_ptr<uint8_t[]>> heaps(ids.size());
    std::vector<PageReadRequest> reqs(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      transient_pin_requests_.fetch_add(1, std::memory_order_relaxed);
      reqs[i] = {ids[i], AcquireTransient(&slots[i], &heaps[i])};
    }
    Status s = device_->ReadBatch(reqs);
    if (!s.ok()) {
      for (size_t i = 0; i < ids.size(); ++i) ReleaseTransient(slots[i]);
      return s;
    }
    for (size_t i = 0; i < ids.size(); ++i) {
      PageRef& ref = out[i];
      ref.id_ = ids[i];
      ref.size_ = page_size;
      ref.data_ = reqs[i].out;
      ref.transient_heap_ = std::move(heaps[i]);
      ref.transient_slot_ = slots[i];
      ref.pager_ = this;
      transient_outstanding_.fetch_add(1, std::memory_order_relaxed);
    }
    return out;
  }
  if (prefetch_pending_count_.load(std::memory_order_relaxed) > 0) {
    for (PageId id : ids) WaitPrefetchDone(id);
  }
  CCIDX_RETURN_IF_ERROR(BatchLoadResident(ids, &out));
  return out;
}

void Pager::WarmMany(std::span<const PageId> ids) {
  if (!overlap_enabled_ || ids.empty()) return;
  (void)BatchLoadResident(ids, nullptr);
}

// ---------------------------------------------------------------------------
// Readahead (DESIGN.md §9, §10)
// ---------------------------------------------------------------------------

bool Pager::TouchIfResident(PageId id) {
  uint64_t hash = MixPageId(id);
  Shard& shard = shards_[static_cast<uint32_t>(hash) & shard_mask_];
  std::unique_lock lock(shard.mu, std::try_to_lock);
  if (!lock.owns_lock()) return false;  // contended: let a worker decide
  uint32_t pos = ProbeLocked(shard, id, hash);
  int32_t slot = shard.table[pos];
  if (slot < 0) return false;
  shard.frames[slot].referenced = true;
  return true;
}

void Pager::WaitPrefetchDone(PageId id) {
  std::unique_lock lock(prefetch_mu_);
  prefetch_done_cv_.wait(lock, [&] {
    return prefetch_stop_ || prefetch_pending_.count(id) == 0;
  });
}

void Pager::PrefetchWorker() {
  std::unique_lock lock(prefetch_mu_);
  std::vector<PageId> batch;
  for (;;) {
    prefetch_cv_.wait(lock, [this] {
      return prefetch_stop_ || revive_requested_ || !prefetch_queue_.empty();
    });
    if (prefetch_stop_) return;
    if (revive_requested_) {
      // A Free signalled new capacity from inside a latch-held critical
      // section; run the staging pass here on the worker instead.
      revive_requested_ = false;
      lock.unlock();
      ReviveDeferredPrefetches();
      lock.lock();
      if (prefetch_queue_.empty() && prefetch_inflight_ == 0) {
        prefetch_idle_cv_.notify_all();
      }
      continue;
    }
    batch.clear();
    while (!prefetch_queue_.empty() && batch.size() < kPrefetchBatchMax) {
      batch.push_back(prefetch_queue_.front());
      prefetch_queue_.pop_front();
    }
    prefetch_inflight_ += batch.size();
    lock.unlock();
    // The device reads happen here with neither the queue lock nor any
    // shard lock held: a staged batch overlaps into one device
    // round-trip, and a foreground pin of an unrelated page never waits
    // behind its latency. Errors are dropped — a prefetch is a hint; the
    // real Pin re-reads and surfaces them.
    (void)BatchLoadResident(batch, nullptr);
    lock.lock();
    prefetch_inflight_ -= batch.size();
    for (PageId id : batch) prefetch_pending_.erase(id);
    prefetch_pending_count_.store(prefetch_pending_.size(),
                                  std::memory_order_relaxed);
    prefetch_done_cv_.notify_all();
    if (prefetch_queue_.empty() && prefetch_inflight_ == 0) {
      prefetch_idle_cv_.notify_all();
    }
  }
}

void Pager::Prefetch(std::span<const PageId> ids) {
  if (!prefetch_enabled_ || ids.empty()) return;
  bool enqueued = false;
  {
    std::lock_guard lock(prefetch_mu_);
    if (prefetch_stop_) return;
    for (PageId id : ids) {
      if (id == kInvalidPageId) continue;
      if (prefetch_queue_.size() >= kPrefetchQueueCap) break;  // best-effort
      // Dedupe before enqueue: an id already staged (or in flight) and an
      // id already resident would both make the round trip through the
      // queue and a worker's shard-lock acquisition just to find a warm
      // frame — the chained single-id hints from leaf-run walks hit this
      // constantly on warm pools.
      if (prefetch_pending_.count(id) > 0) continue;
      if (TouchIfResident(id)) continue;
      if (prefetch_threads_.empty()) {
        // Lazy start: pagers that never prefetch never spawn threads.
        prefetch_threads_.reserve(kPrefetchThreads);
        for (size_t i = 0; i < kPrefetchThreads; ++i) {
          prefetch_threads_.emplace_back([this] { PrefetchWorker(); });
        }
      }
      prefetch_queue_.push_back(id);
      prefetch_pending_.insert(id);
      prefetch_pending_count_.store(prefetch_pending_.size(),
                                    std::memory_order_relaxed);
      prefetches_issued_.fetch_add(1, std::memory_order_relaxed);
      enqueued = true;
    }
  }
  if (enqueued) prefetch_cv_.notify_all();
}

void Pager::DrainPrefetch() {
  std::unique_lock lock(prefetch_mu_);
  prefetch_idle_cv_.wait(lock, [this] {
    return !revive_requested_ && prefetch_queue_.empty() &&
           prefetch_inflight_ == 0;
  });
}

void Pager::DeferPrefetch(PageId id) {
  if (!prefetch_enabled_) return;
  std::lock_guard lock(deferred_prefetch_mu_);
  for (PageId parked : deferred_prefetch_) {
    if (parked == id) return;
  }
  if (deferred_prefetch_.size() >= kDeferredPrefetchCap) {
    // Drop the oldest: later hints track the scan's frontier.
    deferred_prefetch_.erase(deferred_prefetch_.begin());
  }
  deferred_prefetch_.push_back(id);
  deferred_prefetch_count_.store(deferred_prefetch_.size(),
                                 std::memory_order_relaxed);
  prefetches_deferred_.fetch_add(1, std::memory_order_relaxed);
}

void Pager::ReviveDeferredPrefetches() {
  // Relaxed fast path: pin releases are the lock-free hot path and parked
  // hints are rare, so the common case must stay one load.
  if (deferred_prefetch_count_.load(std::memory_order_relaxed) == 0) return;
  std::vector<PageId> ids;
  {
    std::lock_guard lock(deferred_prefetch_mu_);
    ids.swap(deferred_prefetch_);
    deferred_prefetch_count_.store(0, std::memory_order_relaxed);
  }
  if (ids.empty()) return;
  prefetches_revived_.fetch_add(ids.size(), std::memory_order_relaxed);
  Prefetch(ids);
}

void Pager::RequestReviveAsync() {
  // Same relaxed fast path as ReviveDeferredPrefetches: nothing parked,
  // nothing to signal.
  if (deferred_prefetch_count_.load(std::memory_order_relaxed) == 0) return;
  {
    std::lock_guard lock(prefetch_mu_);
    // No worker running (nothing has been prefetched yet, or we are
    // shutting down): leave the hints parked — the next pin-release
    // revive or Prefetch call picks them up.
    if (prefetch_stop_ || prefetch_threads_.empty()) return;
    revive_requested_ = true;
  }
  prefetch_cv_.notify_all();
}

bool Pager::AnyOtherShardHasCapacity(uint32_t except) const {
  for (uint32_t i = 0; i < num_shards_; ++i) {
    if (i == except) continue;
    Shard& shard = shards_[i];
    std::lock_guard lock(shard.mu);
    if (!shard.free_slots.empty()) return true;
    for (uint32_t s = 0; s < shard.capacity; ++s) {
      if (shard.frames[s].pins.load(std::memory_order_acquire) == 0) {
        return true;
      }
    }
  }
  return false;
}

Result<MutPageRef> Pager::TransientMutRef(PageId id, MutMode mode) {
  MutPageRef ref;
  ref.id_ = id;
  ref.size_ = device_->page_size();
  int32_t slot = -1;
  std::unique_ptr<uint8_t[]> heap;
  uint8_t* buf = AcquireTransient(&slot, &heap);
  if (mode == MutMode::kLoad) {
    Status s = device_->Read(id, {buf, ref.size_});
    if (!s.ok()) {
      ReleaseTransient(slot);
      return s;
    }
  } else {
    std::memset(buf, 0, ref.size_);
  }
  ref.data_ = buf;
  ref.transient_heap_ = std::move(heap);
  ref.transient_slot_ = slot;
  ref.pager_ = this;
  transient_outstanding_.fetch_add(1, std::memory_order_relaxed);
  return ref;
}

MutPageRef Pager::PoolMutRefLocked(PageId id, Frame* frame) {
  frame->pins.fetch_add(1, std::memory_order_relaxed);
  frame->mut_pins.fetch_add(1, std::memory_order_relaxed);
  frame->dirty = true;
  MutPageRef ref;
  ref.id_ = id;
  ref.size_ = device_->page_size();
  ref.frame_ = frame;
  ref.data_ = frame->data;
  ref.pager_ = this;
  return ref;
}

Result<MutPageRef> Pager::PinMut(PageId id, MutMode mode) {
  // First mutable touch inside a WAL transaction logs the page's
  // before-image. Must happen before any shard lock: a kOverwrite hit
  // zero-fills the frame, destroying the content the image needs (and the
  // capture pins the page shared, which takes the lock itself).
  if (wal_ != nullptr) CCIDX_RETURN_IF_ERROR(WalCaptureBeforeImage(id));
  if (capacity_ == 0) {
    transient_pin_requests_.fetch_add(1, std::memory_order_relaxed);
    return TransientMutRef(id, mode);
  }
  if (prefetch_pending_count_.load(std::memory_order_relaxed) > 0) {
    WaitPrefetchDone(id);
  }
  uint64_t hash = MixPageId(id);
  Shard& shard = shards_[static_cast<uint32_t>(hash) & shard_mask_];
  std::lock_guard lock(shard.mu);
  shard.pin_requests++;
  auto frame = GetFrameLocked(shard, id, hash, mode);
  CCIDX_RETURN_IF_ERROR(frame.status());
  return PoolMutRefLocked(id, *frame);
}

Result<MutPageRef> Pager::PinNew() {
  // One step: the freshly allocated id has no stale frame (Free() uncaches
  // before returning ids to the device), so this claims and pins the frame
  // in a single miss with no redundant lookup or re-zeroing.
  PageId id = device_->Allocate();
  RecordAllocation(id);
  if (wal_ != nullptr) WalOnAlloc(id);
  if (capacity_ == 0) {
    transient_pin_requests_.fetch_add(1, std::memory_order_relaxed);
    return TransientMutRef(id, MutMode::kOverwrite);
  }
  uint64_t hash = MixPageId(id);
  Shard& shard = shards_[static_cast<uint32_t>(hash) & shard_mask_];
  std::lock_guard lock(shard.mu);
  shard.pin_requests++;
  auto frame = GetFrameLocked(shard, id, hash, MutMode::kOverwrite);
  CCIDX_RETURN_IF_ERROR(frame.status());
  return PoolMutRefLocked(id, *frame);
}

// ---------------------------------------------------------------------------
// Transient (uncached) buffer recycling
// ---------------------------------------------------------------------------

uint8_t* Pager::AcquireTransient(int32_t* slot,
                                 std::unique_ptr<uint8_t[]>* heap) {
  {
    std::lock_guard lock(transient_mu_);
    if (!transient_free_.empty()) {
      *slot = static_cast<int32_t>(transient_free_.back());
      transient_free_.pop_back();
      return arena_ + frame_stride_ * static_cast<size_t>(*slot);
    }
  }
  // Arena exhausted (more than kTransientArenaFrames simultaneous
  // transient pins): fall back to the heap for this one.
  *slot = -1;
  *heap = std::make_unique<uint8_t[]>(device_->page_size());
  return heap->get();
}

void Pager::ReleaseTransient(int32_t slot) {
  if (slot < 0) return;
  std::lock_guard lock(transient_mu_);
  transient_free_.push_back(static_cast<uint32_t>(slot));
}

// ---------------------------------------------------------------------------
// Introspection, flush, stats
// ---------------------------------------------------------------------------

uint64_t Pager::pinned_frames() const {
  uint64_t n = 0;
  for (uint32_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard lock(shard.mu);
    for (uint32_t s = 0; s < shard.capacity; ++s) {
      if (shard.frames[s].id != kInvalidPageId &&
          shard.frames[s].pins.load(std::memory_order_acquire) > 0) {
        n++;
      }
    }
  }
  return n;
}

uint64_t Pager::outstanding_pins() const {
  // Derived instead of counted: frame pin counts are the ground truth for
  // pool handles (keeps the per-pin hot path to one atomic each way);
  // transient handles keep their own counter (no frames to consult).
  uint64_t n = transient_outstanding_.load(std::memory_order_relaxed);
  for (uint32_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard lock(shard.mu);
    for (uint32_t s = 0; s < shard.capacity; ++s) {
      n += shard.frames[s].pins.load(std::memory_order_acquire);
    }
  }
  return n;
}

void Pager::RecordDeferredError(Status s) {
  std::lock_guard lock(deferred_mu_);
  if (deferred_error_.ok()) deferred_error_ = std::move(s);
}

Status Pager::TakeDeferredError() {
  std::lock_guard lock(deferred_mu_);
  Status s = std::move(deferred_error_);
  deferred_error_ = Status::OK();
  return s;
}

Status Pager::Read(PageId id, std::span<uint8_t> out) {
  if (out.size() != device_->page_size()) {
    return Status::InvalidArgument("pager read buffer size mismatch");
  }
  auto ref = Pin(id);
  CCIDX_RETURN_IF_ERROR(ref.status());
  std::memcpy(out.data(), ref->data().data(), out.size());
  return Status::OK();
}

Status Pager::Write(PageId id, std::span<const uint8_t> in) {
  if (in.size() != device_->page_size()) {
    return Status::InvalidArgument("pager write buffer size mismatch");
  }
  auto ref = PinMut(id, MutMode::kOverwrite);
  CCIDX_RETURN_IF_ERROR(ref.status());
  std::memcpy(ref->data().data(), in.data(), in.size());
  return ref->Release();
}

Status Pager::Flush() {
  CCIDX_RETURN_IF_ERROR(TakeDeferredError());
  for (uint32_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard lock(shard.mu);
    for (uint32_t s = 0; s < shard.capacity; ++s) {
      Frame& frame = shard.frames[s];
      if (frame.id == kInvalidPageId) continue;
      CCIDX_RETURN_IF_ERROR(WriteBack(frame));
    }
  }
  return Status::OK();
}

Status Pager::DropCache() {
  // Quiesce readahead first: a straggler landing after the clear would
  // leave the "cold" cache warm for exactly the page about to be pinned.
  DrainPrefetch();
  {
    // Parked warm hints die with the cache: reviving one after the clear
    // would silently re-warm a page the caller just made cold.
    std::lock_guard lock(deferred_prefetch_mu_);
    deferred_prefetch_.clear();
    deferred_prefetch_count_.store(0, std::memory_order_relaxed);
  }
  CCIDX_RETURN_IF_ERROR(TakeDeferredError());
  uint64_t pins = outstanding_pins();
  if (pins > 0) {
    return Status::FailedPrecondition(
        "DropCache with " + std::to_string(pins) + " outstanding pin(s)");
  }
  CCIDX_RETURN_IF_ERROR(Flush());
  for (uint32_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard lock(shard.mu);
    std::fill(shard.table.begin(), shard.table.end(), -1);
    shard.free_slots.clear();
    for (uint32_t s = 0; s < shard.capacity; ++s) {
      Frame& frame = shard.frames[s];
      frame.id = kInvalidPageId;
      frame.dirty = false;
      frame.referenced = false;
      shard.free_slots.push_back(shard.capacity - 1 - s);
    }
    shard.hand = 0;
  }
  return Status::OK();
}

IoStats Pager::CombinedStats() const {
  IoStats s = device_->stats();
  s.pin_requests = transient_pin_requests_.load(std::memory_order_relaxed);
  for (uint32_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard lock(shard.mu);
    s.cache_hits += shard.hits;
    s.cache_misses += shard.misses;
    s.pin_requests += shard.pin_requests;
  }
  return s;
}

void Pager::ResetStats() {
  device_->ResetStats();
  for (uint32_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard lock(shard.mu);
    shard.hits = 0;
    shard.misses = 0;
    shard.pin_requests = 0;
  }
  transient_pin_requests_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// WAL integration (DESIGN.md §13)
// ---------------------------------------------------------------------------

void Pager::AttachWal(Wal* wal) {
  CCIDX_CHECK(wal != nullptr);
  CCIDX_CHECK(wal->device() == device_);
  CCIDX_CHECK(wal_ == nullptr || wal_ == wal);
  wal_ = wal;
  // The log must always start with a checkpoint: it is the allocation
  // baseline recovery replays onto. Writes performed with no WalScope
  // active (e.g. an initial bulk build) are not logged — callers
  // checkpoint after such a build to move the baseline past it.
  if (wal->records() == 0) {
    CCIDX_CHECK(wal->Checkpoint(this).ok());
  }
}

Pager::WalTxn* Pager::CurrentWalTxn() {
  std::lock_guard lock(wal_txns_mu_);
  auto it = wal_txns_.find(std::this_thread::get_id());
  // Node-stable: only this thread mutates or erases its own entry, so the
  // pointer stays valid after the lock drops.
  return it == wal_txns_.end() ? nullptr : &it->second;
}

Status Pager::WalCaptureBeforeImage(PageId id) {
  WalTxn* txn = CurrentWalTxn();
  if (txn == nullptr) return Status::OK();
  if (txn->allocated.contains(id) || txn->captured.contains(id)) {
    return Status::OK();
  }
  // Shared pin: pool-aware, so a dirty resident frame contributes its
  // current (logical) content, not the stale device copy.
  auto ref = Pin(id);
  CCIDX_RETURN_IF_ERROR(ref.status());
  Status s = txn->wal->LogPageImage(txn->id, id, ref->data());
  ref->Release();
  CCIDX_RETURN_IF_ERROR(s);
  txn->captured.insert(id);
  txn->touched.push_back(id);
  return Status::OK();
}

void Pager::WalOnAlloc(PageId id) {
  WalTxn* txn = CurrentWalTxn();
  if (txn == nullptr) return;
  // A failed append (simulated crash or a real EIO/ENOSPC, which latches
  // the wal's sticky failed state) guarantees the commit record can never
  // be written either, so the lost record is harmless: the txn is
  // uncommitted by construction and recovery leaves the page free.
  (void)txn->wal->LogAlloc(txn->id, id);
  txn->allocated.insert(id);
  txn->touched.push_back(id);
}

Status Pager::FlushPages(std::span<const PageId> ids) {
  if (capacity_ == 0) return Status::OK();  // transient writes hit the
                                            // device at Release already
  for (PageId id : ids) {
    uint64_t hash = MixPageId(id);
    Shard& shard = shards_[static_cast<uint32_t>(hash) & shard_mask_];
    std::lock_guard lock(shard.mu);
    int32_t slot = shard.table[ProbeLocked(shard, id, hash)];
    if (slot < 0) continue;  // not resident (evicted or freed): on device
    CCIDX_RETURN_IF_ERROR(WriteBack(shard.frames[slot]));
  }
  return Status::OK();
}

Status Pager::DiscardCache() {
  DrainPrefetch();
  {
    std::lock_guard lock(deferred_prefetch_mu_);
    deferred_prefetch_.clear();
    deferred_prefetch_count_.store(0, std::memory_order_relaxed);
  }
  // Pre-crash parked errors are history the recovery replaces.
  (void)TakeDeferredError();
  uint64_t pins = outstanding_pins();
  if (pins > 0) {
    return Status::FailedPrecondition(
        "DiscardCache with " + std::to_string(pins) + " outstanding pin(s)");
  }
  for (uint32_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard lock(shard.mu);
    std::fill(shard.table.begin(), shard.table.end(), -1);
    shard.free_slots.clear();
    for (uint32_t s = 0; s < shard.capacity; ++s) {
      Frame& frame = shard.frames[s];
      frame.id = kInvalidPageId;
      frame.dirty = false;  // dirty state is deliberately dropped
      frame.referenced = false;
      shard.free_slots.push_back(shard.capacity - 1 - s);
    }
    shard.hand = 0;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// WalScope
// ---------------------------------------------------------------------------

WalScope::WalScope(Pager* pager)
    : pager_(pager), tid_(std::this_thread::get_id()) {
  Wal* wal = pager_->wal_;
  if (wal == nullptr) return;  // inert: the WAL is strictly opt-in
  active_ = true;
  std::lock_guard lock(pager_->wal_txns_mu_);
  auto [it, inserted] = pager_->wal_txns_.try_emplace(tid_);
  if (inserted) {
    it->second.id = wal->BeginTxn();
    it->second.wal = wal;
    outermost_ = true;
  } else {
    it->second.depth++;
  }
}

Status WalScope::Commit() {
  if (!active_ || committed_) return Status::OK();
  if (!outermost_) {  // folds into the enclosing txn
    committed_ = true;
    return Status::OK();
  }
  CCIDX_CHECK(tid_ == std::this_thread::get_id());
  Pager::WalTxn* txn = pager_->CurrentWalTxn();
  CCIDX_CHECK(txn != nullptr && txn->depth == 1);
  // Force phase: the txn's touched pages go to the device (each write-back
  // syncs the log first — WAL-before-data), then a data barrier, then the
  // commit record makes the txn durable. Buffer-only updates (no touched
  // pages) still commit: the record carries the registered metas. On
  // failure committed_ stays false and the destructor runs the abort
  // protocol instead.
  CCIDX_RETURN_IF_ERROR(pager_->FlushPages(txn->touched));
  CCIDX_RETURN_IF_ERROR(pager_->device_->SyncData());
  CCIDX_RETURN_IF_ERROR(txn->wal->CommitTxn(txn->id));
  committed_ = true;
  return Status::OK();
}

WalScope::~WalScope() {
  if (!active_) return;
  CCIDX_CHECK(tid_ == std::this_thread::get_id());
  Pager::WalTxn* txn = pager_->CurrentWalTxn();
  CCIDX_CHECK(txn != nullptr);
  if (!outermost_) {
    txn->depth--;
    return;
  }
  if (!committed_ && (!txn->touched.empty() || !txn->deferred_frees.empty())) {
    // In-process abort (a device error unwound the op). Zero-record
    // scopes (a shared-mode restart, a not-found delete) skip this:
    // nothing was logged, so there is nothing to resolve.
    // The family left
    // its documented pre-or-post-op coherent state, and execution
    // CONTINUES from that state — later committed txns may build on it.
    // So the abort must resolve like a meta-less commit: force the
    // surviving pages, then mark the txn resolved so recovery keeps them.
    // Best-effort — if the force fails (the device is the thing that is
    // broken), the abort record is skipped and recovery undoes the txn
    // from its already-durable before-images instead: the coherent pre-op
    // state.
    Status fs = pager_->FlushPages(txn->touched);
    if (fs.ok()) fs = pager_->device_->SyncData();
    if (fs.ok()) (void)txn->wal->AbortTxn(txn->id);
  }
  // Deferred frees apply on exit whether or not the commit record made it
  // out: in-process, families free pre-existing pages only past their
  // point of no return, and across a crash the allocation state is rebuilt
  // from the log, not from this in-memory application.
  std::vector<PageId> frees = std::move(txn->deferred_frees);
  {
    std::lock_guard lock(pager_->wal_txns_mu_);
    pager_->wal_txns_.erase(tid_);
  }
  for (PageId id : frees) {
    Status s = pager_->device_->Free(id);
    if (s.ok()) {
      pager_->ForgetAllocation(id);
      if (pager_->capacity_ > 0) pager_->RequestReviveAsync();
    }
  }
}

}  // namespace ccidx
