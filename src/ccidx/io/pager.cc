#include "ccidx/io/pager.h"

#include <cstring>

namespace ccidx {

// ---------------------------------------------------------------------------
// PageRef / MutPageRef
// ---------------------------------------------------------------------------

void PageRef::Release() {
  if (!valid()) return;
  if (frame_ != nullptr) {
    pager_->UnpinShared(frame_);
  } else {
    // Transient read pin: dropping the private copy costs nothing.
    pager_->outstanding_pins_--;
  }
  pager_ = nullptr;
  frame_ = nullptr;
  transient_.reset();
  data_ = nullptr;
}

MutPageRef& MutPageRef::operator=(MutPageRef&& o) noexcept {
  if (this != &o) {
    ReleaseToDeferred();
    MoveFrom(o);
  }
  return *this;
}

MutPageRef::~MutPageRef() { ReleaseToDeferred(); }

void MutPageRef::ReleaseToDeferred() {
  if (!valid()) return;
  // Destructor-path release: a transient write-back failure here cannot be
  // returned, so it is parked as the pager's deferred error and surfaced
  // by the next Flush()/DropCache().
  Pager* pager = pager_;
  Status s = Release();
  if (!s.ok()) pager->RecordDeferredError(std::move(s));
}

Status MutPageRef::Release() {
  if (!valid()) return Status::OK();
  Pager* pager = pager_;
  pager_ = nullptr;
  data_ = nullptr;
  if (frame_ != nullptr) {
    pager->UnpinMut(frame_);
    frame_ = nullptr;
    return Status::OK();
  }
  // Uncached: the page lives only in this handle; write it back now so the
  // caller sees the device Status (the historical Write() behavior).
  std::unique_ptr<uint8_t[]> buf = std::move(transient_);
  pager->outstanding_pins_--;
  return pager->device_->Write(id_, {buf.get(), size_});
}

// ---------------------------------------------------------------------------
// Pager
// ---------------------------------------------------------------------------

Pager::Pager(BlockDevice* device, uint32_t capacity_pages)
    : device_(device), capacity_(capacity_pages) {
  CCIDX_CHECK(device_ != nullptr);
}

Pager::~Pager() {
  // All pins must be released before the pool is torn down: a live handle
  // would point into freed frames.
  CCIDX_CHECK(outstanding_pins_ == 0);
  // Best-effort flush. A destructor cannot surface a Status, so both a
  // flush failure and a still-parked deferred error die here — callers
  // that care about durability must Flush() (and check it) before
  // destroying the pager.
  Flush().ok();
}

void Pager::RecordAllocation(PageId id) {
  if (!alloc_scopes_.empty()) alloc_scopes_.back().insert(id);
}

void Pager::ForgetAllocation(PageId id) {
  // A page is recorded in at most one scope; erase wherever it lives.
  for (auto& scope : alloc_scopes_) {
    if (scope.erase(id) > 0) return;
  }
}

AllocationScope::AllocationScope(Pager* pager) : pager_(pager) {
  pager_->alloc_scopes_.emplace_back();
}

AllocationScope::~AllocationScope() {
  std::unordered_set<PageId> pages = std::move(pager_->alloc_scopes_.back());
  pager_->alloc_scopes_.pop_back();
  if (committed_) {
    // Fold into the enclosing scope (if any) so an outer rollback still
    // covers these pages.
    if (!pager_->alloc_scopes_.empty()) {
      pager_->alloc_scopes_.back().merge(pages);
    }
    return;
  }
  // Rollback: free every recorded page that is still live. Free() needs
  // no device transfer, so this succeeds under active fault injection.
  for (PageId id : pages) {
    (void)pager_->Free(id);
  }
}

void AllocationScope::Commit() { committed_ = true; }

PageId Pager::Allocate() {
  PageId id = device_->Allocate();
  RecordAllocation(id);
  if (capacity_ == 0) return id;
  // Freshly allocated pages are zeroed on the device; cache a zero copy so
  // the first write does not need a device read. Best-effort: if no frame
  // can be claimed right now (e.g. every frame is pinned), the page simply
  // starts uncached — it already exists zeroed on the device.
  auto result = GetFrame(id, MutMode::kOverwrite);
  if (result.ok()) (*result)->dirty = true;
  return id;
}

Status Pager::Free(PageId id) {
  auto it = index_.find(id);
  if (it != index_.end()) {
    if (it->second->pins > 0) {
      return Status::FailedPrecondition("free of pinned page " +
                                        std::to_string(id));
    }
    lru_.erase(it->second);
    index_.erase(it);
  }
  Status s = device_->Free(id);
  if (s.ok()) ForgetAllocation(id);
  return s;
}

Result<Pager::Frame*> Pager::GetFrame(PageId id, MutMode mode) {
  auto it = index_.find(id);
  if (it != index_.end()) {
    Frame* frame = &*it->second;
    if (mode == MutMode::kOverwrite && frame->pins > 0) {
      // Zero-filling the frame would mutate the page under live views.
      return Status::FailedPrecondition("overwrite of pinned page " +
                                        std::to_string(id));
    }
    hits_++;
    // Move to front (most recently used).
    lru_.splice(lru_.begin(), lru_, it->second);
    if (mode == MutMode::kOverwrite) {
      // Caller rewrites the page; start from deterministic zeros exactly as
      // the historical copy-based Write did.
      std::memset(frame->data.get(), 0, device_->page_size());
    }
    return frame;
  }
  misses_++;
  CCIDX_RETURN_IF_ERROR(EvictIfFull());
  Frame frame;
  frame.id = id;
  frame.dirty = (mode == MutMode::kOverwrite);
  frame.data = std::make_unique<uint8_t[]>(device_->page_size());
  if (mode == MutMode::kLoad) {
    CCIDX_RETURN_IF_ERROR(
        device_->Read(id, {frame.data.get(), device_->page_size()}));
  } else {
    std::memset(frame.data.get(), 0, device_->page_size());
  }
  lru_.push_front(std::move(frame));
  index_[id] = lru_.begin();
  return &*lru_.begin();
}

Status Pager::EvictIfFull() {
  while (lru_.size() >= capacity_) {
    // LRU order with a pinned-skip scan: the victim is the least recently
    // used frame without an outstanding pin.
    auto victim = lru_.end();
    for (auto rit = lru_.rbegin(); rit != lru_.rend(); ++rit) {
      if (rit->pins == 0) {
        victim = std::prev(rit.base());
        break;
      }
    }
    if (victim == lru_.end()) {
      return Status::ResourceExhausted(
          "all buffer-pool frames are pinned (capacity " +
          std::to_string(capacity_) + ")");
    }
    CCIDX_RETURN_IF_ERROR(WriteBack(*victim));
    index_.erase(victim->id);
    lru_.erase(victim);
  }
  return Status::OK();
}

Status Pager::WriteBack(Frame& frame) {
  if (!frame.dirty) return Status::OK();
  CCIDX_RETURN_IF_ERROR(
      device_->Write(frame.id, {frame.data.get(), device_->page_size()}));
  // Under an active writer the frame must stay dirty: the pin holder may
  // modify the span after this write-back.
  if (frame.mut_pins == 0) frame.dirty = false;
  return Status::OK();
}

Result<PageRef> Pager::Pin(PageId id) {
  pin_requests_++;
  PageRef ref;
  ref.id_ = id;
  ref.size_ = device_->page_size();
  if (capacity_ == 0) {
    auto buf = std::make_unique<uint8_t[]>(ref.size_);
    CCIDX_RETURN_IF_ERROR(device_->Read(id, {buf.get(), ref.size_}));
    ref.data_ = buf.get();
    ref.transient_ = std::move(buf);
    ref.pager_ = this;
    outstanding_pins_++;
    return ref;
  }
  auto frame = GetFrame(id, MutMode::kLoad);
  CCIDX_RETURN_IF_ERROR(frame.status());
  (*frame)->pins++;
  ref.frame_ = *frame;
  ref.data_ = (*frame)->data.get();
  ref.pager_ = this;
  outstanding_pins_++;
  return ref;
}

Result<MutPageRef> Pager::TransientMutRef(PageId id, MutMode mode) {
  MutPageRef ref;
  ref.id_ = id;
  ref.size_ = device_->page_size();
  auto buf = std::make_unique<uint8_t[]>(ref.size_);
  if (mode == MutMode::kLoad) {
    CCIDX_RETURN_IF_ERROR(device_->Read(id, {buf.get(), ref.size_}));
  } else {
    std::memset(buf.get(), 0, ref.size_);
  }
  ref.data_ = buf.get();
  ref.transient_ = std::move(buf);
  ref.pager_ = this;
  outstanding_pins_++;
  return ref;
}

MutPageRef Pager::PoolMutRef(PageId id, Frame* frame) {
  frame->pins++;
  frame->mut_pins++;
  frame->dirty = true;
  MutPageRef ref;
  ref.id_ = id;
  ref.size_ = device_->page_size();
  ref.frame_ = frame;
  ref.data_ = frame->data.get();
  ref.pager_ = this;
  outstanding_pins_++;
  return ref;
}

Result<MutPageRef> Pager::PinMut(PageId id, MutMode mode) {
  pin_requests_++;
  if (capacity_ == 0) return TransientMutRef(id, mode);
  auto frame = GetFrame(id, mode);
  CCIDX_RETURN_IF_ERROR(frame.status());
  return PoolMutRef(id, *frame);
}

Result<MutPageRef> Pager::PinNew() {
  // One step: the freshly allocated id has no stale frame (Free() uncaches
  // before returning ids to the device), so this claims and pins the frame
  // in a single miss with no redundant lookup or re-zeroing.
  PageId id = device_->Allocate();
  RecordAllocation(id);
  pin_requests_++;
  if (capacity_ == 0) return TransientMutRef(id, MutMode::kOverwrite);
  auto frame = GetFrame(id, MutMode::kOverwrite);
  CCIDX_RETURN_IF_ERROR(frame.status());
  return PoolMutRef(id, *frame);
}

uint64_t Pager::pinned_frames() const {
  uint64_t n = 0;
  for (const Frame& f : lru_) {
    if (f.pins > 0) n++;
  }
  return n;
}

void Pager::UnpinShared(Frame* frame) {
  CCIDX_CHECK(frame->pins > 0);
  frame->pins--;
  outstanding_pins_--;
}

void Pager::UnpinMut(Frame* frame) {
  CCIDX_CHECK(frame->pins > 0 && frame->mut_pins > 0);
  frame->pins--;
  frame->mut_pins--;
  outstanding_pins_--;
}

void Pager::RecordDeferredError(Status s) {
  if (deferred_error_.ok()) deferred_error_ = std::move(s);
}

Status Pager::TakeDeferredError() {
  Status s = std::move(deferred_error_);
  deferred_error_ = Status::OK();
  return s;
}

Status Pager::Read(PageId id, std::span<uint8_t> out) {
  if (out.size() != device_->page_size()) {
    return Status::InvalidArgument("pager read buffer size mismatch");
  }
  auto ref = Pin(id);
  CCIDX_RETURN_IF_ERROR(ref.status());
  std::memcpy(out.data(), ref->data().data(), out.size());
  return Status::OK();
}

Status Pager::Write(PageId id, std::span<const uint8_t> in) {
  if (in.size() != device_->page_size()) {
    return Status::InvalidArgument("pager write buffer size mismatch");
  }
  auto ref = PinMut(id, MutMode::kOverwrite);
  CCIDX_RETURN_IF_ERROR(ref.status());
  std::memcpy(ref->data().data(), in.data(), in.size());
  return ref->Release();
}

Status Pager::Flush() {
  CCIDX_RETURN_IF_ERROR(TakeDeferredError());
  for (Frame& frame : lru_) {
    CCIDX_RETURN_IF_ERROR(WriteBack(frame));
  }
  return Status::OK();
}

Status Pager::DropCache() {
  CCIDX_RETURN_IF_ERROR(TakeDeferredError());
  if (outstanding_pins_ > 0) {
    return Status::FailedPrecondition(
        "DropCache with " + std::to_string(outstanding_pins_) +
        " outstanding pin(s)");
  }
  CCIDX_RETURN_IF_ERROR(Flush());
  lru_.clear();
  index_.clear();
  return Status::OK();
}

IoStats Pager::CombinedStats() const {
  IoStats s = device_->stats();
  s.cache_hits = hits_;
  s.cache_misses = misses_;
  s.pin_requests = pin_requests_;
  return s;
}

void Pager::ResetStats() {
  device_->stats().Reset();
  hits_ = 0;
  misses_ = 0;
  pin_requests_ = 0;
}

}  // namespace ccidx
