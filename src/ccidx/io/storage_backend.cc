#include "ccidx/io/storage_backend.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#if defined(__has_include)
#if __has_include(<liburing.h>)
#define CCIDX_HAVE_LIBURING 1
#include <liburing.h>
#endif
#endif

namespace ccidx {

Status StorageBackend::ReadPages(const PageReadRequest* reqs, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    CCIDX_RETURN_IF_ERROR(ReadPage(reqs[i].id, reqs[i].out));
  }
  return Status::OK();
}

namespace {

// ---------------------------------------------------------------------------
// mem: the historical in-memory simulator. One zeroed heap allocation per
// page; unique_ptr gives stable data addresses, so concurrent transfers of
// distinct pages under the device's shared lock are safe while the vector
// grows only under the exclusive lock (EnsureCapacity).
// ---------------------------------------------------------------------------

class MemStorageBackend final : public StorageBackend {
 public:
  explicit MemStorageBackend(uint32_t page_size) : page_size_(page_size) {}

  const char* name() const override { return "mem"; }
  bool real_io() const override { return false; }

  Status EnsureCapacity(uint64_t num_pages) override {
    while (pages_.size() < num_pages) {
      auto page = std::make_unique<uint8_t[]>(page_size_);
      std::memset(page.get(), 0, page_size_);
      pages_.push_back(std::move(page));
    }
    return Status::OK();
  }

  Status ZeroPage(PageId id) override {
    CCIDX_CHECK(id < pages_.size());
    std::memset(pages_[id].get(), 0, page_size_);
    return Status::OK();
  }

  Status ReadPage(PageId id, uint8_t* out) override {
    CCIDX_CHECK(id < pages_.size());
    std::memcpy(out, pages_[id].get(), page_size_);
    return Status::OK();
  }

  Status WritePage(PageId id, const uint8_t* in) override {
    CCIDX_CHECK(id < pages_.size());
    std::memcpy(pages_[id].get(), in, page_size_);
    return Status::OK();
  }

 private:
  uint32_t page_size_;
  std::vector<std::unique_ptr<uint8_t[]>> pages_;
};

// ---------------------------------------------------------------------------
// file: a real (anonymous, unlinked) file accessed with pread/pwrite.
// ---------------------------------------------------------------------------

// O_DIRECT alignment unit: buffers, offsets and sizes must be multiples of
// the logical block size; 4096 is safe on every modern device.
constexpr size_t kDirectAlign = 4096;

// Batches below this run as a plain serial loop: on tmpfs a pread costs
// about a microsecond, so fan-out overhead would dominate.
constexpr size_t kBatchSpawnThreshold = 4;

// Extra reader threads a batch may fan out to (the submitting thread also
// works, so parallelism is kMaxBatchThreads + 1).
constexpr size_t kMaxBatchThreads = 3;

std::string PickDir(const std::string& dir) {
  if (!dir.empty()) return dir;
  if (const char* env = std::getenv("CCIDX_DEVICE_DIR")) {
    if (*env != '\0') return env;
  }
  if (const char* env = std::getenv("TMPDIR")) {
    if (*env != '\0') return env;
  }
  return "/tmp";
}

class FileStorageBackend final : public StorageBackend {
 public:
  FileStorageBackend(int fd, uint32_t page_size, bool direct)
      : fd_(fd), page_size_(page_size), direct_(direct) {
    if (direct_) {
      zero_buf_ = static_cast<uint8_t*>(
          std::aligned_alloc(kDirectAlign, page_size_));
    } else {
      zero_buf_ = static_cast<uint8_t*>(std::malloc(page_size_));
    }
    CCIDX_CHECK(zero_buf_ != nullptr);
    std::memset(zero_buf_, 0, page_size_);
#if defined(CCIDX_HAVE_LIBURING)
    // io_uring is strictly opt-in (CCIDX_URING=1): kernels and seccomp
    // sandboxes that reject io_uring_setup are common, and the thread-pool
    // fallback is always correct.
    const char* env = std::getenv("CCIDX_URING");
    if (env != nullptr && std::strcmp(env, "1") == 0) {
      uring_ok_ = io_uring_queue_init(64, &ring_, 0) == 0;
    }
#endif
  }

  ~FileStorageBackend() override {
#if defined(CCIDX_HAVE_LIBURING)
    if (uring_ok_) io_uring_queue_exit(&ring_);
#endif
    std::free(zero_buf_);
    ::close(fd_);
  }

  const char* name() const override {
#if defined(CCIDX_HAVE_LIBURING)
    if (uring_ok_) return "file+uring";
#endif
    return "file";
  }
  bool real_io() const override { return true; }

  Status EnsureCapacity(uint64_t num_pages) override {
    uint64_t bytes = num_pages * static_cast<uint64_t>(page_size_);
    if (bytes <= file_bytes_) return Status::OK();
    // ftruncate extension reads back as zeros, matching the simulator's
    // zero-filled fresh pages.
    if (::ftruncate(fd_, static_cast<off_t>(bytes)) != 0) {
      return Status::IoError("ftruncate failed: " +
                             std::string(std::strerror(errno)));
    }
    file_bytes_ = bytes;
    return Status::OK();
  }

  Status ZeroPage(PageId id) override {
    return WritePage(id, zero_buf_);
  }

  Status ReadPage(PageId id, uint8_t* out) override {
    if (NeedsBounce(out)) {
      AlignedBuf buf = MakeAligned();
      CCIDX_RETURN_IF_ERROR(PreadFull(buf.get(), Offset(id)));
      std::memcpy(out, buf.get(), page_size_);
      return Status::OK();
    }
    return PreadFull(out, Offset(id));
  }

  Status WritePage(PageId id, const uint8_t* in) override {
    if (NeedsBounce(in)) {
      AlignedBuf buf = MakeAligned();
      std::memcpy(buf.get(), in, page_size_);
      return PwriteFull(buf.get(), Offset(id));
    }
    return PwriteFull(in, Offset(id));
  }

  Status ReadPages(const PageReadRequest* reqs, size_t count) override {
    if (count < kBatchSpawnThreshold) {
      return StorageBackend::ReadPages(reqs, count);
    }
#if defined(CCIDX_HAVE_LIBURING)
    if (uring_ok_ && !AnyBounce(reqs, count)) {
      return ReadPagesUring(reqs, count);
    }
#endif
    return ReadPagesThreaded(reqs, count);
  }

  Status SyncData() override {
    if (::fdatasync(fd_) != 0) {
      return Status::IoError("fdatasync failed: " +
                             std::string(std::strerror(errno)));
    }
    return Status::OK();
  }

 private:
  struct FreeDeleter {
    void operator()(uint8_t* p) const { std::free(p); }
  };
  using AlignedBuf = std::unique_ptr<uint8_t, FreeDeleter>;

  AlignedBuf MakeAligned() const {
    auto* p =
        static_cast<uint8_t*>(std::aligned_alloc(kDirectAlign, page_size_));
    CCIDX_CHECK(p != nullptr);
    return AlignedBuf(p);
  }

  bool NeedsBounce(const void* p) const {
    return direct_ &&
           (reinterpret_cast<uintptr_t>(p) % kDirectAlign) != 0;
  }

  bool AnyBounce(const PageReadRequest* reqs, size_t count) const {
    if (!direct_) return false;
    for (size_t i = 0; i < count; ++i) {
      if (NeedsBounce(reqs[i].out)) return true;
    }
    return false;
  }

  off_t Offset(PageId id) const {
    return static_cast<off_t>(id * static_cast<uint64_t>(page_size_));
  }

  Status PreadFull(uint8_t* dst, off_t off) {
    size_t done = 0;
    while (done < page_size_) {
      ssize_t n = ::pread(fd_, dst + done, page_size_ - done,
                          off + static_cast<off_t>(done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IoError("pread failed: " +
                               std::string(std::strerror(errno)));
      }
      if (n == 0) {
        return Status::IoError("pread hit EOF inside a page");
      }
      done += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status PwriteFull(const uint8_t* src, off_t off) {
    size_t done = 0;
    while (done < page_size_) {
      ssize_t n = ::pwrite(fd_, src + done, page_size_ - done,
                           off + static_cast<off_t>(done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IoError("pwrite failed: " +
                               std::string(std::strerror(errno)));
      }
      done += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  // Portable concurrent batch: the submitting thread plus up to
  // kMaxBatchThreads helpers drain an atomic cursor over the request
  // array. Each request is an independent pread, so no coordination
  // beyond the cursor and a first-error slot is needed.
  Status ReadPagesThreaded(const PageReadRequest* reqs, size_t count) {
    std::atomic<size_t> next{0};
    std::mutex err_mu;
    Status first_err;
    auto work = [&] {
      for (;;) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        Status s = ReadPage(reqs[i].id, reqs[i].out);
        if (!s.ok()) {
          std::lock_guard lock(err_mu);
          if (first_err.ok()) first_err = std::move(s);
        }
      }
    };
    size_t helpers = std::min(kMaxBatchThreads, count / 2);
    std::vector<std::thread> threads;
    threads.reserve(helpers);
    for (size_t i = 0; i < helpers; ++i) threads.emplace_back(work);
    work();
    for (std::thread& t : threads) t.join();
    return first_err;
  }

#if defined(CCIDX_HAVE_LIBURING)
  // io_uring batch submission: one submit_and_wait per chunk of the ring.
  // Serialized under uring_mu_ — the ring is a single shared resource; the
  // parallelism is inside the kernel.
  Status ReadPagesUring(const PageReadRequest* reqs, size_t count) {
    std::lock_guard lock(uring_mu_);
    size_t submitted = 0;
    while (submitted < count) {
      unsigned chunk = 0;
      while (submitted + chunk < count) {
        struct io_uring_sqe* sqe = io_uring_get_sqe(&ring_);
        if (sqe == nullptr) break;
        const PageReadRequest& r = reqs[submitted + chunk];
        io_uring_prep_read(sqe, fd_, r.out, page_size_, Offset(r.id));
        chunk++;
      }
      if (chunk == 0) {
        return Status::IoError("io_uring submission queue stalled");
      }
      int rc = io_uring_submit_and_wait(&ring_, chunk);
      if (rc < 0) {
        return Status::IoError("io_uring_submit_and_wait failed");
      }
      Status first_err;
      for (unsigned i = 0; i < chunk; ++i) {
        struct io_uring_cqe* cqe = nullptr;
        if (io_uring_wait_cqe(&ring_, &cqe) != 0) {
          return Status::IoError("io_uring_wait_cqe failed");
        }
        if (first_err.ok() &&
            cqe->res != static_cast<int32_t>(page_size_)) {
          first_err = Status::IoError("io_uring short or failed read");
        }
        io_uring_cqe_seen(&ring_, cqe);
      }
      CCIDX_RETURN_IF_ERROR(first_err);
      submitted += chunk;
    }
    return Status::OK();
  }
#endif

  int fd_;
  uint32_t page_size_;
  bool direct_;
  uint64_t file_bytes_ = 0;
  uint8_t* zero_buf_ = nullptr;
#if defined(CCIDX_HAVE_LIBURING)
  bool uring_ok_ = false;
  std::mutex uring_mu_;
  struct io_uring ring_;
#endif
};

// Opens an anonymous temp file in `dir`: O_TMPFILE when the filesystem
// supports it, else mkstemp + unlink. Returns -1 on failure.
int OpenAnonFile(const std::string& dir, bool direct) {
  int flags = O_RDWR | O_CLOEXEC | (direct ? O_DIRECT : 0);
  int fd = -1;
#if defined(O_TMPFILE)
  fd = ::open(dir.c_str(), flags | O_TMPFILE, 0600);
  if (fd >= 0) return fd;
#endif
  std::string tmpl = dir + "/ccidx-device-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  fd = ::mkstemp(buf.data());
  if (fd < 0) return -1;
  ::unlink(buf.data());
  if (direct && ::fcntl(fd, F_SETFL, O_DIRECT) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

std::unique_ptr<StorageBackend> MakeMemStorageBackend(uint32_t page_size) {
  return std::make_unique<MemStorageBackend>(page_size);
}

Result<std::unique_ptr<StorageBackend>> MakeFileStorageBackend(
    uint32_t page_size, const std::string& dir) {
  std::string d = PickDir(dir);
  // O_DIRECT where available: only meaningful when pages are multiples of
  // the alignment unit; fall back to buffered I/O when the open is refused
  // (e.g. tmpfs rejects O_DIRECT).
  bool direct = page_size % kDirectAlign == 0;
  int fd = direct ? OpenAnonFile(d, /*direct=*/true) : -1;
  if (fd < 0) {
    direct = false;
    fd = OpenAnonFile(d, /*direct=*/false);
  }
  if (fd < 0) {
    return Status::IoError("cannot create device file in '" + d +
                           "': " + std::string(std::strerror(errno)));
  }
  return std::unique_ptr<StorageBackend>(
      std::make_unique<FileStorageBackend>(fd, page_size, direct));
}

}  // namespace ccidx
