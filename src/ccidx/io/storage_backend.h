// StorageBackend: pluggable byte storage behind BlockDevice (DESIGN.md §10).
//
// The paper's cost model lives entirely in BlockDevice: transfer counters,
// fault injection, the allocation table, and latency injection are all
// front-end concerns and are bit-identical across backends. A backend only
// moves page-sized byte ranges:
//
//   * mem  — the historical in-memory simulator (default): one zeroed
//            heap allocation per page, stable addresses.
//   * file — a real file (pread/pwrite), O_DIRECT where the page size
//            permits it, io_uring batch submission behind the CCIDX_URING
//            gate with a portable thread-pool fallback. Exists so the
//            full test suite can replay against real kernel I/O paths.
//
// Locking discipline is inherited from BlockDevice and is part of this
// contract: EnsureCapacity / ZeroPage are invoked only under the device's
// exclusive lock; ReadPage / WritePage / ReadPages under its shared lock,
// concurrently, but never two writers (or a writer and a reader) of the
// same page. Backends therefore need no locking of their own beyond what
// their batch machinery requires internally.

#ifndef CCIDX_IO_STORAGE_BACKEND_H_
#define CCIDX_IO_STORAGE_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>

#include "ccidx/common/status.h"

namespace ccidx {

/// Identifier of a page on the device.
using PageId = uint64_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPageId = ~static_cast<PageId>(0);

/// One entry of a batch read: fill `out[0, page_size)` from page `id`.
/// The caller owns the buffer and keeps it alive across the call.
struct PageReadRequest {
  PageId id = kInvalidPageId;
  uint8_t* out = nullptr;
};

/// Byte-moving interface implemented by each storage backend. All page ids
/// passed in have been validated (allocated, in range) by BlockDevice.
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Short stable label ("mem", "file", "file+uring") for logs and the
  /// per-line `backend` field in benchmark JSON.
  virtual const char* name() const = 0;

  /// True when transfers leave the process (real kernel I/O): overlap pays
  /// even without injected latency, so the pager enables speculation.
  virtual bool real_io() const = 0;

  /// Grows the store so pages [0, num_pages) are addressable; new pages
  /// read as zeros. Called under the device's exclusive lock.
  virtual Status EnsureCapacity(uint64_t num_pages) = 0;

  /// Zero-fills one existing page (free-list reuse). Exclusive lock.
  virtual Status ZeroPage(PageId id) = 0;

  /// Copies one page into `out` (exactly page_size bytes). Shared lock.
  virtual Status ReadPage(PageId id, uint8_t* out) = 0;

  /// Overwrites one page from `in` (exactly page_size bytes). Shared lock.
  virtual Status WritePage(PageId id, const uint8_t* in) = 0;

  /// Reads `count` pages, as concurrently as the backend can (io_uring /
  /// thread pool for file, plain loop for mem). All-or-error: on failure
  /// the buffer contents are unspecified and the caller retries or aborts
  /// page-at-a-time. Shared lock. The base implementation is the serial
  /// loop, which is exact for zero-latency memory.
  virtual Status ReadPages(const PageReadRequest* reqs, size_t count);

  /// Durability barrier: returns once previously written pages are on
  /// stable storage (fdatasync for the file backend). The WAL's commit
  /// protocol (DESIGN.md §13) calls this between forcing a transaction's
  /// data pages and appending its commit record. No-op for memory.
  virtual Status SyncData() { return Status::OK(); }
};

/// The historical in-memory simulator.
std::unique_ptr<StorageBackend> MakeMemStorageBackend(uint32_t page_size);

/// File-backed storage in `dir` (an anonymous unlinked temp file; empty
/// dir means $TMPDIR or /tmp). Attempts O_DIRECT when page_size is a
/// multiple of 4096; uses io_uring for ReadPages when built against
/// liburing *and* CCIDX_URING=1, else a small persistent thread pool.
Result<std::unique_ptr<StorageBackend>> MakeFileStorageBackend(
    uint32_t page_size, const std::string& dir);

}  // namespace ccidx

#endif  // CCIDX_IO_STORAGE_BACKEND_H_
