// BlockDevice: a disk of fixed-size pages over a pluggable StorageBackend.
//
// Substitution note (see DESIGN.md §2, §10): the paper measures algorithms
// by page transfers to/from secondary storage. This device reproduces that
// cost model exactly and deterministically — each Read/Write of a page
// increments IoStats, and every cost-model concern (transfer counters,
// fault injection, the allocation table, latency injection) lives in this
// front end, so IoStats are bit-identical no matter which backend moves
// the bytes:
//
//   * mem  (default)             — the historical in-memory simulator
//   * file (CCIDX_DEVICE=file)   — a real unlinked temp file, pread/pwrite
//                                  (+ O_DIRECT / io_uring where available)
//
// CCIDX_DEVICE_LATENCY_US=N injects a deterministic N-microsecond delay
// per device read — and *one* delay per ReadBatch, which models a real
// device accepting a queue of concurrent requests. That is what makes
// I/O overlap benchmarkable in CI without real hardware: a serial descent
// pays one delay per level while a batched fan-out pays one per batch.
// Writes are not delayed (builds stay fast; every overlap optimization in
// this codebase targets the read path).
//
// Thread safety (DESIGN.md §7): concurrent Read/Write of *distinct* pages
// is safe (page transfers take a shared lock on the allocation table; the
// I/O counters are relaxed atomics, so readers never serialize on stats).
// Allocate/Free mutate the table under the exclusive lock and are safe
// against concurrent transfers. Concurrent Write (or Write + Read) of the
// *same* page is the caller's race, exactly as on real hardware — the
// Pager's pin protocol prevents it for all library structures.

#ifndef CCIDX_IO_BLOCK_DEVICE_H_
#define CCIDX_IO_BLOCK_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "ccidx/common/status.h"
#include "ccidx/io/io_stats.h"
#include "ccidx/io/storage_backend.h"

namespace ccidx {

/// Backend selection + latency injection for a BlockDevice. The default-
/// constructed device resolves these from the environment (see
/// DeviceOptionsFromEnv); tests and benches pass them explicitly.
struct BlockDeviceOptions {
  std::string backend = "mem";   ///< "mem" or "file"
  std::string dir;               ///< file backend directory ("" = $TMPDIR)
  uint32_t read_latency_us = 0;  ///< injected delay per read / per batch
};

/// Reads CCIDX_DEVICE ("mem" | "file"), CCIDX_DEVICE_DIR and
/// CCIDX_DEVICE_LATENCY_US. This is how CI replays the entire unmodified
/// test suite against the file backend or the latency simulator.
BlockDeviceOptions DeviceOptionsFromEnv();

/// A disk: an append-allocated array of `page_size()`-byte pages with a
/// free list, delegating byte storage to a StorageBackend.
class BlockDevice {
 public:
  /// Creates a device whose pages hold `page_size` bytes, with the backend
  /// chosen by the environment (mem unless CCIDX_DEVICE says otherwise).
  /// The paper's B is expressed by each data structure as "records per
  /// page"; page_size bounds that via the record width.
  explicit BlockDevice(uint32_t page_size);

  /// Creates a device with an explicit backend/latency configuration.
  /// A misconfigured file backend (unwritable dir) is a checked error.
  BlockDevice(uint32_t page_size, const BlockDeviceOptions& options);

  uint32_t page_size() const { return page_size_; }

  /// Short label of the storage backend ("mem", "file", "file+uring").
  const char* backend_name() const { return backend_->name(); }

  /// True when transfers leave the process (file backend) — overlap pays
  /// even without injected latency.
  bool real_io() const { return backend_->real_io(); }

  /// The injected per-read delay (0 = cost-model mode).
  uint32_t read_latency_us() const { return latency_us_; }

  /// Allocates a zeroed page and returns its id (reuses freed pages).
  PageId Allocate();

  /// Returns a page to the free list. Double-free is a checked error.
  Status Free(PageId id);

  /// Copies the page contents into `out` (out.size() == page_size()).
  /// Counts one device read.
  Status Read(PageId id, std::span<uint8_t> out);

  /// Reads a batch of pages as one concurrent device operation. Counting
  /// semantics are serial-equivalent: each request is validated and
  /// consumes fault-injection budget in array order, the approved prefix
  /// is issued (and counted) as a batch, and the first failure's Status is
  /// returned — exactly the reads a serial loop stopping at that failure
  /// would have performed. Latency injection sleeps once for the whole
  /// batch: concurrent requests on a real device overlap.
  Status ReadBatch(std::span<const PageReadRequest> reqs);

  /// Overwrites the page from `in` (in.size() == page_size()).
  /// Counts one device write.
  Status Write(PageId id, std::span<const uint8_t> in);

  /// Number of live (allocated, not freed) pages — the structure's footprint
  /// in disk blocks, compared against the paper's space bounds.
  uint64_t live_pages() const;

  /// Total pages ever allocated (high-water mark of the address space).
  uint64_t total_pages() const;

  /// Snapshot of the transfer counters (relaxed-atomic internally, so
  /// concurrent readers never contend). Returned by value: diff snapshots
  /// with `operator-`; clear the live counters with ResetStats().
  IoStats stats() const;

  /// Zeroes the live transfer counters.
  void ResetStats();

  /// Fault injection for tests: after `ops` further successful transfers,
  /// every Read/Write fails with IoError until cleared (ops < 0 clears).
  /// Lets tests verify that every structure surfaces device failures as
  /// Status instead of crashing or corrupting in-memory state.
  void SetFailAfter(int64_t ops) {
    fail_after_.store(ops, std::memory_order_relaxed);
  }

  // --- durability / crash-recovery surface (DESIGN.md §13) ---------------

  /// Durability barrier over previously written pages (fdatasync on the
  /// file backend, no-op on mem). The WAL commit protocol calls this after
  /// forcing a transaction's data pages and before its commit record.
  Status SyncData();

  /// Simulated power loss: while crashed, every Read/ReadBatch/Write fails
  /// with IoError ("the machine is off"). Allocation bookkeeping remains
  /// available so in-flight scopes can unwind. Wal::SetCrashAfterRecords
  /// flips this on; Wal::Recover clears it.
  void SetCrashed(bool crashed) {
    crashed_.store(crashed, std::memory_order_relaxed);
  }
  bool crashed() const { return crashed_.load(std::memory_order_relaxed); }

  /// Torn-write injection: after `writes` further successful page writes,
  /// the next Write transfers only the first half of the buffer (the old
  /// second half survives) and fails with IoError — the classic torn page
  /// a before-image WAL must repair. One-shot; writes < 0 disarms.
  void SetTornWriteAfter(int64_t writes) {
    torn_write_after_.store(writes, std::memory_order_relaxed);
  }

  /// Point-in-time copy of the allocation table, embedded in WAL
  /// checkpoint records and rebuilt by recovery.
  struct AllocationSnapshot {
    uint64_t total_pages = 0;
    std::vector<bool> freed;  // indexed by id, true = on the free list
  };
  AllocationSnapshot SnapshotAllocation() const;

  /// Restores the allocation table (free list + high-water mark) to
  /// `snap`. Recovery-only: the pager's cache must have been discarded.
  /// Backing bytes of re-grown or re-freed pages are NOT touched — freed
  /// pages are zeroed on reallocation, and recovery overwrites live pages
  /// from before-images as needed.
  void RestoreAllocation(const AllocationSnapshot& snap);

  /// True when `id` is allocated and not freed. Recovery uses this to skip
  /// before-image restores of pages that are dead in the restored state.
  bool is_live(PageId id) const;

 private:
  // Returns true if this transfer should fail (and consumes budget).
  bool ShouldFail();

  // Requires mu_ (shared or exclusive).
  bool IsLive(PageId id) const;

  // Latency injection: called after a successful read outside mu_.
  void InjectReadLatency() const;

  uint32_t page_size_;
  uint32_t latency_us_ = 0;
  std::unique_ptr<StorageBackend> backend_;
  // Guards the allocation-table *structure* (freed_/free_list_) and the
  // backend's capacity. Transfers take it shared — backends give stable
  // per-page storage, so concurrent reads of distinct pages proceed in
  // parallel; Allocate/Free take it exclusive.
  mutable std::shared_mutex mu_;
  std::vector<PageId> free_list_;
  std::vector<bool> freed_;  // indexed by id: true if on free list
  // Backend pages ever made addressable (the backend never shrinks, even
  // when RestoreAllocation shrinks freed_). A fresh high-water-mark
  // allocation below this re-covers stale bytes and must be zeroed;
  // at or above it the backend guarantees zeros. Guarded by mu_.
  uint64_t backend_hwm_ = 0;
  // Contention-free counters: relaxed atomics, merged into an IoStats
  // snapshot by stats().
  std::atomic<uint64_t> device_reads_{0};
  std::atomic<uint64_t> device_writes_{0};
  std::atomic<uint64_t> read_batches_{0};
  std::atomic<uint64_t> pages_allocated_{0};
  std::atomic<uint64_t> pages_freed_{0};
  std::atomic<int64_t> fail_after_{-1};  // < 0: fault injection disabled
  std::mutex fail_mu_;  // serializes budget consumption (test-only path)
  std::atomic<bool> crashed_{false};         // simulated power loss
  std::atomic<int64_t> torn_write_after_{-1};  // < 0: disarmed
};

}  // namespace ccidx

#endif  // CCIDX_IO_BLOCK_DEVICE_H_
