// BlockDevice: an in-memory simulated disk of fixed-size pages.
//
// Substitution note (see DESIGN.md §2): the paper measures algorithms by
// page transfers to/from secondary storage. This simulator reproduces that
// cost model exactly and deterministically — each Read/Write of a page
// increments IoStats. All library structures access storage only through
// this interface (via Pager), so measured I/O counts are faithful.
//
// Thread safety (DESIGN.md §7): concurrent Read/Write of *distinct* pages
// is safe (page transfers take a shared lock on the page table; the I/O
// counters are relaxed atomics, so readers never serialize on stats).
// Allocate/Free mutate the page table under the exclusive lock and are
// safe against concurrent transfers. Concurrent Write (or Write + Read)
// of the *same* page is the caller's race, exactly as on real hardware —
// the Pager's pin protocol prevents it for all library structures.

#ifndef CCIDX_IO_BLOCK_DEVICE_H_
#define CCIDX_IO_BLOCK_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <vector>

#include "ccidx/common/status.h"
#include "ccidx/io/io_stats.h"

namespace ccidx {

/// Identifier of a page on the device.
using PageId = uint64_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPageId = ~static_cast<PageId>(0);

/// A simulated disk: an append-allocated array of `page_size()`-byte pages
/// with a free list.
class BlockDevice {
 public:
  /// Creates a device whose pages hold `page_size` bytes. The paper's B is
  /// expressed by each data structure as "records per page"; page_size
  /// bounds that via the record width.
  explicit BlockDevice(uint32_t page_size);

  uint32_t page_size() const { return page_size_; }

  /// Allocates a zeroed page and returns its id (reuses freed pages).
  PageId Allocate();

  /// Returns a page to the free list. Double-free is a checked error.
  Status Free(PageId id);

  /// Copies the page contents into `out` (out.size() == page_size()).
  /// Counts one device read.
  Status Read(PageId id, std::span<uint8_t> out);

  /// Overwrites the page from `in` (in.size() == page_size()).
  /// Counts one device write.
  Status Write(PageId id, std::span<const uint8_t> in);

  /// Number of live (allocated, not freed) pages — the structure's footprint
  /// in disk blocks, compared against the paper's space bounds.
  uint64_t live_pages() const;

  /// Total pages ever allocated (high-water mark of the address space).
  uint64_t total_pages() const;

  /// Snapshot of the transfer counters (relaxed-atomic internally, so
  /// concurrent readers never contend). Returned by value: diff snapshots
  /// with `operator-`; clear the live counters with ResetStats().
  IoStats stats() const;

  /// Zeroes the live transfer counters.
  void ResetStats();

  /// Fault injection for tests: after `ops` further successful transfers,
  /// every Read/Write fails with IoError until cleared (ops < 0 clears).
  /// Lets tests verify that every structure surfaces device failures as
  /// Status instead of crashing or corrupting in-memory state.
  void SetFailAfter(int64_t ops) {
    fail_after_.store(ops, std::memory_order_relaxed);
  }

 private:
  // Returns true if this transfer should fail (and consumes budget).
  bool ShouldFail();

  // Requires mu_ (shared or exclusive).
  bool IsLive(PageId id) const;

  uint32_t page_size_;
  // Guards the page-table *structure* (pages_/free_list_/freed_). Transfers
  // take it shared — page unique_ptrs give stable data addresses, so
  // concurrent reads of distinct pages proceed in parallel; Allocate/Free
  // take it exclusive.
  mutable std::shared_mutex mu_;
  std::vector<std::unique_ptr<uint8_t[]>> pages_;
  std::vector<PageId> free_list_;
  std::vector<bool> freed_;  // parallel to pages_: true if on free list
  // Contention-free counters: relaxed atomics, merged into an IoStats
  // snapshot by stats().
  std::atomic<uint64_t> device_reads_{0};
  std::atomic<uint64_t> device_writes_{0};
  std::atomic<uint64_t> pages_allocated_{0};
  std::atomic<uint64_t> pages_freed_{0};
  std::atomic<int64_t> fail_after_{-1};  // < 0: fault injection disabled
  std::mutex fail_mu_;  // serializes budget consumption (test-only path)
};

}  // namespace ccidx

#endif  // CCIDX_IO_BLOCK_DEVICE_H_
