// BlockDevice: an in-memory simulated disk of fixed-size pages.
//
// Substitution note (see DESIGN.md §2): the paper measures algorithms by
// page transfers to/from secondary storage. This simulator reproduces that
// cost model exactly and deterministically — each Read/Write of a page
// increments IoStats. All library structures access storage only through
// this interface (via Pager), so measured I/O counts are faithful.

#ifndef CCIDX_IO_BLOCK_DEVICE_H_
#define CCIDX_IO_BLOCK_DEVICE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "ccidx/common/status.h"
#include "ccidx/io/io_stats.h"

namespace ccidx {

/// Identifier of a page on the device.
using PageId = uint64_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPageId = ~static_cast<PageId>(0);

/// A simulated disk: an append-allocated array of `page_size()`-byte pages
/// with a free list. Not thread-safe (single-threaded simulation).
class BlockDevice {
 public:
  /// Creates a device whose pages hold `page_size` bytes. The paper's B is
  /// expressed by each data structure as "records per page"; page_size
  /// bounds that via the record width.
  explicit BlockDevice(uint32_t page_size);

  uint32_t page_size() const { return page_size_; }

  /// Allocates a zeroed page and returns its id (reuses freed pages).
  PageId Allocate();

  /// Returns a page to the free list. Double-free is a checked error.
  Status Free(PageId id);

  /// Copies the page contents into `out` (out.size() == page_size()).
  /// Counts one device read.
  Status Read(PageId id, std::span<uint8_t> out);

  /// Overwrites the page from `in` (in.size() == page_size()).
  /// Counts one device write.
  Status Write(PageId id, std::span<const uint8_t> in);

  /// Number of live (allocated, not freed) pages — the structure's footprint
  /// in disk blocks, compared against the paper's space bounds.
  uint64_t live_pages() const { return pages_.size() - free_list_.size(); }

  /// Total pages ever allocated (high-water mark of the address space).
  uint64_t total_pages() const { return pages_.size(); }

  IoStats& stats() { return stats_; }
  const IoStats& stats() const { return stats_; }

  /// Fault injection for tests: after `ops` further successful transfers,
  /// every Read/Write fails with IoError until cleared (ops < 0 clears).
  /// Lets tests verify that every structure surfaces device failures as
  /// Status instead of crashing or corrupting in-memory state.
  void SetFailAfter(int64_t ops) { fail_after_ = ops; }

 private:
  // Returns true if this transfer should fail (and consumes budget).
  bool ShouldFail();

  bool IsLive(PageId id) const;

  uint32_t page_size_;
  std::vector<std::unique_ptr<uint8_t[]>> pages_;
  std::vector<PageId> free_list_;
  std::vector<bool> freed_;  // parallel to pages_: true if on free list
  IoStats stats_;
  int64_t fail_after_ = -1;  // < 0: fault injection disabled
};

}  // namespace ccidx

#endif  // CCIDX_IO_BLOCK_DEVICE_H_
