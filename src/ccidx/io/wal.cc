#include "ccidx/io/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "ccidx/io/pager.h"

namespace ccidx {

namespace {

// ---------------------------------------------------------------------------
// CRC32 (software table; IEEE polynomial) — guards every record header +
// payload so a torn tail or bit rot truncates the log instead of replaying
// garbage.
// ---------------------------------------------------------------------------

const uint32_t* Crc32Table() {
  static const auto* table = [] {
    auto* t = new uint32_t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

uint32_t Crc32(uint32_t seed, const uint8_t* data, size_t n) {
  const uint32_t* table = Crc32Table();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// Record wire format: [u32 crc][u32 len][u16 type][u16 flags][u64 txn]
// [payload: len bytes]; crc covers everything after the crc field.
constexpr size_t kHeaderSize = 4 + 4 + 2 + 2 + 8;
// A page image dominates record size; anything above this is corruption.
constexpr uint32_t kMaxPayload = 64u << 20;

std::vector<uint8_t> EncodeRecord(WalRecordType type, uint64_t txn,
                                  std::span<const uint8_t> payload) {
  std::vector<uint8_t> rec(kHeaderSize + payload.size());
  uint32_t len = static_cast<uint32_t>(payload.size());
  uint16_t type16 = static_cast<uint16_t>(type);
  uint16_t flags = 0;
  std::memcpy(rec.data() + 4, &len, 4);
  std::memcpy(rec.data() + 8, &type16, 2);
  std::memcpy(rec.data() + 10, &flags, 2);
  std::memcpy(rec.data() + 12, &txn, 8);
  if (!payload.empty()) {
    std::memcpy(rec.data() + kHeaderSize, payload.data(), payload.size());
  }
  uint32_t crc = Crc32(0, rec.data() + 4, rec.size() - 4);
  std::memcpy(rec.data(), &crc, 4);
  return rec;
}

// Parses records from `log`, stopping (and setting *torn) at the first
// short, oversized, or CRC-failing record.
std::vector<WalRecord> ParseLog(std::span<const uint8_t> log, bool* torn) {
  std::vector<WalRecord> out;
  *torn = false;
  size_t pos = 0;
  while (pos < log.size()) {
    if (log.size() - pos < kHeaderSize) {
      *torn = true;
      break;
    }
    uint32_t crc, len;
    uint16_t type16, flags;
    uint64_t txn;
    std::memcpy(&crc, log.data() + pos, 4);
    std::memcpy(&len, log.data() + pos + 4, 4);
    std::memcpy(&type16, log.data() + pos + 8, 2);
    std::memcpy(&flags, log.data() + pos + 10, 2);
    std::memcpy(&txn, log.data() + pos + 12, 8);
    if (len > kMaxPayload || log.size() - pos - kHeaderSize < len) {
      *torn = true;
      break;
    }
    uint32_t want = Crc32(0, log.data() + pos + 4, kHeaderSize - 4 + len);
    if (want != crc) {
      *torn = true;
      break;
    }
    WalRecord rec;
    rec.type = static_cast<WalRecordType>(type16);
    rec.txn = txn;
    rec.payload.assign(log.data() + pos + kHeaderSize,
                       log.data() + pos + kHeaderSize + len);
    out.push_back(std::move(rec));
    pos += kHeaderSize + len;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Log storage flavors
// ---------------------------------------------------------------------------

class MemWalStorage final : public WalStorage {
 public:
  const char* name() const override { return "mem"; }
  Status Append(std::span<const uint8_t> bytes) override {
    std::lock_guard lock(mu_);
    log_.insert(log_.end(), bytes.begin(), bytes.end());
    return Status::OK();
  }
  Status Sync() override { return Status::OK(); }
  Status ReadAll(std::vector<uint8_t>* out) override {
    std::lock_guard lock(mu_);
    *out = log_;
    return Status::OK();
  }
  Status Reset(std::span<const uint8_t> bytes) override {
    std::lock_guard lock(mu_);
    log_.assign(bytes.begin(), bytes.end());
    return Status::OK();
  }
  uint64_t size() const override {
    std::lock_guard lock(mu_);
    return log_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<uint8_t> log_;
};

class FileWalStorage final : public WalStorage {
 public:
  explicit FileWalStorage(const std::string& path) : path_(path) {
    // A leftover temp file means a crash hit mid-Reset before the rename;
    // the log at path_ is still the intact previous log. Discard the
    // orphan so it can't be mistaken for anything.
    (void)::unlink(TmpPath().c_str());
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    CCIDX_CHECK(fd_ >= 0);
    off_t end = ::lseek(fd_, 0, SEEK_END);
    size_ = end < 0 ? 0 : static_cast<uint64_t>(end);
  }
  ~FileWalStorage() override {
    if (fd_ >= 0) ::close(fd_);
  }

  const char* name() const override { return "file"; }

  Status Append(std::span<const uint8_t> bytes) override {
    std::lock_guard lock(mu_);
    return WriteAt(bytes, size_);
  }

  Status Sync() override {
    std::lock_guard lock(mu_);
    if (::fdatasync(fd_) != 0) {
      return Status::IoError("wal fdatasync failed: " +
                             std::string(std::strerror(errno)));
    }
    return Status::OK();
  }

  Status ReadAll(std::vector<uint8_t>* out) override {
    std::lock_guard lock(mu_);
    out->resize(size_);
    size_t done = 0;
    while (done < out->size()) {
      ssize_t n = ::pread(fd_, out->data() + done, out->size() - done,
                          static_cast<off_t>(done));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        return Status::IoError("wal pread failed: " +
                               std::string(std::strerror(errno)));
      }
      done += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  // Crash-atomic whole-log replacement: write the new log to a temp file,
  // make it durable, then rename(2) over the old path and fsync the
  // directory. Power loss at any point leaves either the complete old log
  // or the complete new one — never the empty/torn file that a
  // truncate-then-write protocol exposes between its two steps.
  Status Reset(std::span<const uint8_t> bytes) override {
    std::lock_guard lock(mu_);
    const std::string tmp = TmpPath();
    int tfd = ::open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (tfd < 0) {
      return Status::IoError("wal tmp open failed: " +
                             std::string(std::strerror(errno)));
    }
    auto fail = [&](const char* what) {
      Status s = Status::IoError(std::string(what) + " failed: " +
                                 std::strerror(errno));
      ::close(tfd);
      (void)::unlink(tmp.c_str());
      return s;
    };
    size_t done = 0;
    while (done < bytes.size()) {
      ssize_t n = ::pwrite(tfd, bytes.data() + done, bytes.size() - done,
                           static_cast<off_t>(done));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return fail("wal tmp pwrite");
      done += static_cast<size_t>(n);
    }
    if (::fdatasync(tfd) != 0) return fail("wal tmp fdatasync");
    if (::rename(tmp.c_str(), path_.c_str()) != 0) return fail("wal rename");
    // The new log is now the log; retarget the fd before the directory
    // sync so even a failed dir fsync leaves us appending to the right
    // inode.
    ::close(fd_);
    fd_ = tfd;
    size_ = bytes.size();
    return SyncDir();
  }

  uint64_t size() const override {
    std::lock_guard lock(mu_);
    return size_;
  }

 private:
  // Requires mu_.
  Status WriteAt(std::span<const uint8_t> bytes, uint64_t off) {
    size_t done = 0;
    while (done < bytes.size()) {
      ssize_t n = ::pwrite(fd_, bytes.data() + done, bytes.size() - done,
                           static_cast<off_t>(off + done));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        return Status::IoError("wal pwrite failed: " +
                               std::string(std::strerror(errno)));
      }
      done += static_cast<size_t>(n);
    }
    size_ = std::max(size_, off + bytes.size());
    return Status::OK();
  }

  std::string TmpPath() const { return path_ + ".tmp"; }

  // Makes the rename in Reset durable: fsync the containing directory.
  Status SyncDir() const {
    size_t slash = path_.rfind('/');
    std::string dir = slash == std::string::npos ? "." : path_.substr(0, slash);
    if (dir.empty()) dir = "/";
    int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd < 0) {
      return Status::IoError("wal dir open failed: " +
                             std::string(std::strerror(errno)));
    }
    int rc = ::fsync(dfd);
    ::close(dfd);
    if (rc != 0) {
      return Status::IoError("wal dir fsync failed: " +
                             std::string(std::strerror(errno)));
    }
    return Status::OK();
  }

  std::string path_;
  int fd_ = -1;
  mutable std::mutex mu_;
  uint64_t size_ = 0;
};

}  // namespace

std::unique_ptr<WalStorage> MakeMemWalStorage() {
  return std::make_unique<MemWalStorage>();
}

std::unique_ptr<WalStorage> MakeFileWalStorage(const std::string& path) {
  return std::make_unique<FileWalStorage>(path);
}

// ---------------------------------------------------------------------------
// Wal
// ---------------------------------------------------------------------------

Wal::Wal(BlockDevice* device, std::unique_ptr<WalStorage> storage)
    : device_(device), storage_(std::move(storage)) {
  CCIDX_CHECK(device_ != nullptr);
  CCIDX_CHECK(storage_ != nullptr);
}

Status Wal::AppendRecord(WalRecordType type, uint64_t txn,
                         std::span<const uint8_t> payload) {
  // Encode (payload copy + CRC) outside the lock: page images dominate
  // record size and this keeps concurrent appenders off each other.
  std::vector<uint8_t> rec = EncodeRecord(type, txn, payload);
  std::lock_guard lock(append_mu_);
  if (crashed_.load(std::memory_order_relaxed)) {
    return Status::IoError("wal crashed (simulated power loss)");
  }
  if (append_failed_.load(std::memory_order_relaxed)) {
    return Status::IoError(
        "wal unusable after an earlier append failure (records may be "
        "missing; checkpoint or recover to continue)");
  }
  if (crash_after_ >= 0) {
    if (crash_after_ == 0) {
      // The kill point: this record never (fully) reaches the log, the
      // machine is "off" from here on.
      crash_after_ = -1;
      if (crash_mode_ == CrashMode::kTorn) {
        // A torn final record: a strict prefix hit the disk. Cut inside
        // the payload when there is one so the CRC (not just the length
        // check) is exercised.
        size_t cut = kHeaderSize + payload.size() / 2;
        cut = std::min(cut, rec.size() - 1);
        (void)storage_->Append(std::span(rec.data(), cut));
      }
      crashed_.store(true, std::memory_order_relaxed);
      device_->SetCrashed(true);
      return Status::IoError("wal crashed (simulated power loss)");
    }
    crash_after_--;
  }
  Status s = storage_->Append(rec);
  if (!s.ok()) {
    // A real append failure (EIO/ENOSPC) may have lost or torn this
    // record without flipping the simulated-crash flag. The log can no
    // longer be trusted to describe what happened, so latch a sticky
    // failed state: every later append — the commit record above all —
    // fails too, keeping "committed" equivalent to "fully logged".
    append_failed_.store(true, std::memory_order_relaxed);
    return s;
  }
  append_lsn_.fetch_add(1, std::memory_order_release);
  records_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Wal::LogPageImage(uint64_t txn, PageId id,
                         std::span<const uint8_t> image) {
  WalEncoder enc;
  enc.PutU64(id);
  enc.PutBytes(image);
  return AppendRecord(WalRecordType::kPageImage, txn, enc.bytes());
}

Status Wal::LogAlloc(uint64_t txn, PageId id) {
  WalEncoder enc;
  enc.PutU64(id);
  return AppendRecord(WalRecordType::kAlloc, txn, enc.bytes());
}

Status Wal::LogFree(uint64_t txn, PageId id, std::span<const uint8_t> image) {
  WalEncoder enc;
  enc.PutU64(id);
  enc.PutU16(image.empty() ? 0 : 1);
  enc.PutBytes(image);
  return AppendRecord(WalRecordType::kFree, txn, enc.bytes());
}

Wal::MetaSnapshot Wal::CollectMetas() {
  MetaSnapshot snap;
  // The ticket is taken BEFORE any provider runs; mutators complete their
  // state change before their own commit starts collecting (and thus
  // before it takes its ticket). So for any acknowledged mutation, every
  // snapshot with a >= ticket was collected after the mutation and — with
  // internally latched providers — contains it. Recovery keeps the
  // max-ticket snapshot, which therefore contains every acknowledged
  // mutation, no matter how racing commit records interleave in the log.
  // (Holding a lock across collect+append would give the same guarantee
  // via log order, but providers take structure latches that are held
  // around record appends — a lock-order inversion.)
  snap.ticket = meta_clock_.fetch_add(1, std::memory_order_seq_cst) + 1;
  std::vector<std::pair<std::string, MetaProvider>> providers;
  {
    std::lock_guard lock(meta_mu_);
    providers.assign(meta_providers_.begin(), meta_providers_.end());
  }
  snap.entries.reserve(providers.size());
  for (auto& [key, fn] : providers) {
    snap.entries.emplace_back(key, fn());
  }
  return snap;
}

void Wal::EncodeMetas(WalEncoder* enc, const MetaSnapshot& snap) {
  enc->PutU64(snap.ticket);
  enc->PutU32(static_cast<uint32_t>(snap.entries.size()));
  for (const auto& [key, bytes] : snap.entries) {
    enc->PutU16(static_cast<uint16_t>(key.size()));
    enc->PutBytes(std::span(reinterpret_cast<const uint8_t*>(key.data()),
                            key.size()));
    enc->PutBlob(bytes);
  }
}

Status Wal::CommitTxn(uint64_t txn) {
  WalEncoder enc;
  EncodeMetas(&enc, CollectMetas());
  CCIDX_RETURN_IF_ERROR(AppendRecord(WalRecordType::kCommit, txn,
                                     enc.bytes()));
  CCIDX_RETURN_IF_ERROR(GroupSync(append_lsn_.load(std::memory_order_acquire)));
  commits_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Wal::AbortTxn(uint64_t txn) {
  return AppendRecord(WalRecordType::kAbort, txn, {});
}

Status Wal::SyncBeforeData() {
  uint64_t appended = append_lsn_.load(std::memory_order_acquire);
  if (synced_lsn_relaxed_.load(std::memory_order_acquire) >= appended) {
    return Status::OK();
  }
  return GroupSync(appended);
}

Status Wal::GroupSync(uint64_t lsn) {
  std::unique_lock lock(sync_mu_);
  for (;;) {
    if (synced_lsn_ >= lsn) {
      // Another committer's sync already covered our records.
      group_follows_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
    if (!sync_in_progress_) break;
    sync_cv_.wait(lock);
  }
  sync_in_progress_ = true;
  // Sync everything appended so far — later appends ride along for free,
  // and their committers become followers.
  uint64_t target = append_lsn_.load(std::memory_order_acquire);
  lock.unlock();
  Status s = storage_->Sync();
  lock.lock();
  sync_in_progress_ = false;
  if (s.ok()) {
    synced_lsn_ = std::max(synced_lsn_, target);
    synced_lsn_relaxed_.store(synced_lsn_, std::memory_order_release);
    syncs_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // A failed fdatasync leaves the kernel's dirty state unknowable
    // (writeback may have been dropped), so the log's durable contents
    // are too: poison the wal the same way a failed append does.
    append_failed_.store(true, std::memory_order_relaxed);
  }
  sync_cv_.notify_all();
  return s;
}

void Wal::SetMetaProvider(const std::string& key, MetaProvider fn) {
  std::lock_guard lock(meta_mu_);
  if (fn) {
    meta_providers_[key] = std::move(fn);
  } else {
    meta_providers_.erase(key);
  }
}

void Wal::SetCrashAfterRecords(int64_t more, CrashMode mode) {
  std::lock_guard lock(append_mu_);
  crash_after_ = more;
  crash_mode_ = mode;
}

Status Wal::ReadRecords(std::vector<WalRecord>* out, bool* torn_tail) {
  std::vector<uint8_t> log;
  CCIDX_RETURN_IF_ERROR(storage_->ReadAll(&log));
  bool torn = false;
  *out = ParseLog(log, &torn);
  if (torn_tail != nullptr) *torn_tail = torn;
  return Status::OK();
}

Status Wal::RewriteAsCheckpoint(const MetaSnapshot& metas) {
  BlockDevice::AllocationSnapshot snap = device_->SnapshotAllocation();
  WalEncoder enc;
  enc.PutU64(snap.total_pages);
  enc.PutU64(snap.freed.size());
  // vector<bool> bit-packed by hand (one byte per 8 pages).
  std::vector<uint8_t> bits((snap.freed.size() + 7) / 8, 0);
  for (size_t i = 0; i < snap.freed.size(); ++i) {
    if (snap.freed[i]) bits[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
  }
  enc.PutBytes(bits);
  EncodeMetas(&enc, metas);
  std::vector<uint8_t> rec =
      EncodeRecord(WalRecordType::kCheckpoint, 0, enc.bytes());

  std::lock_guard lock(append_mu_);
  CCIDX_RETURN_IF_ERROR(storage_->Reset(rec));
  CCIDX_RETURN_IF_ERROR(storage_->Sync());
  // The whole log was just rewritten from live in-memory state and made
  // durable, so an earlier append failure (lost/torn record) is moot.
  append_failed_.store(false, std::memory_order_relaxed);
  uint64_t lsn = append_lsn_.fetch_add(1, std::memory_order_release) + 1;
  records_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard slock(sync_mu_);
    synced_lsn_ = std::max(synced_lsn_, lsn);
    synced_lsn_relaxed_.store(synced_lsn_, std::memory_order_release);
  }
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Wal::Checkpoint(Pager* pager) {
  if (crashed_.load(std::memory_order_relaxed)) {
    return Status::IoError("wal crashed (simulated power loss)");
  }
  // Callers are quiesced (epoch-gate write side / startup / shutdown), so
  // a whole-pool flush is race-free here.
  if (pager != nullptr) {
    CCIDX_RETURN_IF_ERROR(pager->Flush());
  }
  CCIDX_RETURN_IF_ERROR(device_->SyncData());
  return RewriteAsCheckpoint(CollectMetas());
}

Result<Wal::RecoveryInfo> Wal::Recover(Pager* pager) {
  RecoveryInfo info;

  // 1. The pre-crash pool is volatile state: discard it (dirty frames and
  //    all), then turn the "machine" back on.
  if (pager != nullptr) {
    CCIDX_RETURN_IF_ERROR(pager->DiscardCache());
  }
  {
    std::lock_guard lock(append_mu_);
    crash_after_ = -1;
    crashed_.store(false, std::memory_order_relaxed);
    append_failed_.store(false, std::memory_order_relaxed);
  }
  device_->SetCrashed(false);

  // 2. Parse the log; a torn tail truncates it (torn records were never
  //    acknowledged, so losing them is correct).
  std::vector<uint8_t> log;
  CCIDX_RETURN_IF_ERROR(storage_->ReadAll(&log));
  std::vector<WalRecord> records = ParseLog(log, &info.torn_tail);
  info.records_scanned = records.size();
  if (records.empty() ||
      records.front().type != WalRecordType::kCheckpoint) {
    return Status::Corruption(
        "wal log does not start with a checkpoint record");
  }

  // 3. Base state from the checkpoint record. Meta freshness is decided
  //    by per-key collection tickets, not log position: a commit record
  //    later in the log may carry a snapshot collected earlier (racing
  //    committers), and restoring it would silently drop an acknowledged
  //    buffer-only update. Max-ticket-wins is immune to that interleaving
  //    (see CollectMetas).
  BlockDevice::AllocationSnapshot snap;
  std::unordered_map<std::string, uint64_t> meta_tickets;
  {
    WalDecoder dec(records.front().payload);
    snap.total_pages = dec.GetU64();
    uint64_t nbits = dec.GetU64();
    std::span<const uint8_t> bits = dec.GetBytes((nbits + 7) / 8);
    snap.freed.resize(nbits);
    for (uint64_t i = 0; i < nbits; ++i) {
      snap.freed[i] = (bits[i / 8] >> (i % 8)) & 1u;
    }
    uint64_t ticket = dec.GetU64();
    uint32_t n = dec.GetU32();
    for (uint32_t i = 0; i < n; ++i) {
      uint16_t klen = dec.GetU16();
      std::span<const uint8_t> key = dec.GetBytes(klen);
      std::span<const uint8_t> blob = dec.GetBlob();
      std::string k(key.begin(), key.end());
      info.metas[k] = std::vector<uint8_t>(blob.begin(), blob.end());
      meta_tickets[k] = ticket;
    }
    if (!dec.ok() || snap.freed.size() != snap.total_pages) {
      return Status::Corruption("wal checkpoint record is malformed");
    }
  }

  // 4. Resolved-txn set: committed, plus in-process aborts whose surviving
  //    state was forced before the abort record (records past the torn
  //    tail resolve nothing).
  std::unordered_set<uint64_t> resolved;
  for (const WalRecord& r : records) {
    if (r.type == WalRecordType::kCommit) {
      resolved.insert(r.txn);
      info.committed_txns++;
    } else if (r.type == WalRecordType::kAbort) {
      resolved.insert(r.txn);
    }
  }

  // 5. Forward-replay resolved allocation changes onto the snapshot (both
  //    outcomes applied their alloc/free effects in process), and merge
  //    commit-metas by collection ticket (freshest snapshot wins per key).
  for (const WalRecord& r : records) {
    if (!resolved.contains(r.txn)) continue;
    WalDecoder dec(r.payload);
    switch (r.type) {
      case WalRecordType::kAlloc: {
        PageId id = dec.GetU64();
        if (!dec.ok()) return Status::Corruption("bad wal alloc record");
        if (id >= snap.freed.size()) {
          snap.freed.resize(id + 1, true);
          snap.total_pages = snap.freed.size();
        }
        snap.freed[id] = false;
        break;
      }
      case WalRecordType::kFree: {
        PageId id = dec.GetU64();
        if (!dec.ok() || id >= snap.freed.size()) {
          return Status::Corruption("bad wal free record");
        }
        snap.freed[id] = true;
        break;
      }
      case WalRecordType::kCommit: {
        uint64_t ticket = dec.GetU64();
        uint32_t n = dec.GetU32();
        for (uint32_t i = 0; i < n; ++i) {
          uint16_t klen = dec.GetU16();
          std::span<const uint8_t> key = dec.GetBytes(klen);
          std::span<const uint8_t> blob = dec.GetBlob();
          if (!dec.ok()) return Status::Corruption("bad wal commit record");
          std::string k(key.begin(), key.end());
          uint64_t& best = meta_tickets[k];  // absent key -> 0: first wins
          if (ticket >= best) {
            best = ticket;
            info.metas[k] = std::vector<uint8_t>(blob.begin(), blob.end());
          }
        }
        break;
      }
      default:
        break;
    }
  }
  device_->RestoreAllocation(snap);

  // 6. Undo: restore before-images of *unresolved* (in-flight at crash)
  //    records in reverse log order, landing every page on its last
  //    resolved content. Pages dead in the restored allocation state are
  //    skipped — their content is unreachable (and zeroed on reallocation).
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    const WalRecord& r = *it;
    if (resolved.contains(r.txn)) continue;
    std::span<const uint8_t> image;
    PageId id = kInvalidPageId;
    if (r.type == WalRecordType::kPageImage) {
      WalDecoder dec(r.payload);
      id = dec.GetU64();
      image = dec.GetBytes(device_->page_size());
      if (!dec.ok()) return Status::Corruption("bad wal image record");
    } else if (r.type == WalRecordType::kFree) {
      WalDecoder dec(r.payload);
      id = dec.GetU64();
      if (dec.GetU16() != 0) {
        image = dec.GetBytes(device_->page_size());
      }
      if (!dec.ok()) return Status::Corruption("bad wal free record");
    } else {
      continue;
    }
    if (image.empty() || !device_->is_live(id)) continue;
    CCIDX_RETURN_IF_ERROR(device_->Write(id, image));
    info.images_restored++;
  }

  // 7. Truncate to a fresh checkpoint of the recovered state so a second
  //    crash replays to exactly the same place. The recovered metas (not
  //    the live providers, which still describe pre-crash in-memory
  //    structures) are what goes in.
  MetaSnapshot metas;
  metas.ticket = meta_clock_.fetch_add(1, std::memory_order_seq_cst) + 1;
  metas.entries.assign(info.metas.begin(), info.metas.end());
  CCIDX_RETURN_IF_ERROR(device_->SyncData());
  CCIDX_RETURN_IF_ERROR(RewriteAsCheckpoint(metas));
  return info;
}

}  // namespace ccidx
