// Page serialization helpers: explicit, pointer-free on-page layouts.
//
// Pages are raw byte buffers; structures define POD record layouts and use
// PageWriter / PageReader for bounds-checked sequential encoding, plus
// PageIo for whole-record array pages (the common case: a block of B
// records preceded by a small header). All helpers operate on pinned
// buffer-pool views (Pager::Pin/PinMut) — there is no per-access scratch
// copy anywhere on these paths.

#ifndef CCIDX_IO_PAGE_BUILDER_H_
#define CCIDX_IO_PAGE_BUILDER_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "ccidx/common/status.h"
#include "ccidx/io/pager.h"

namespace ccidx {

/// Sequentially appends POD values into a fixed-size page buffer.
class PageWriter {
 public:
  explicit PageWriter(std::span<uint8_t> buf) : buf_(buf), offset_(0) {}

  template <typename T>
  void Put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    CCIDX_CHECK(offset_ + sizeof(T) <= buf_.size());
    std::memcpy(buf_.data() + offset_, &value, sizeof(T));
    offset_ += sizeof(T);
  }

  template <typename T>
  void PutArray(std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (values.empty()) return;  // empty spans may carry a null data()
    size_t bytes = values.size() * sizeof(T);
    CCIDX_CHECK(offset_ + bytes <= buf_.size());
    std::memcpy(buf_.data() + offset_, values.data(), bytes);
    offset_ += bytes;
  }

  size_t offset() const { return offset_; }
  size_t remaining() const { return buf_.size() - offset_; }

 private:
  std::span<uint8_t> buf_;
  size_t offset_;
};

/// Sequentially decodes POD values from a page buffer.
class PageReader {
 public:
  explicit PageReader(std::span<const uint8_t> buf) : buf_(buf), offset_(0) {}

  template <typename T>
  T Get() {
    static_assert(std::is_trivially_copyable_v<T>);
    CCIDX_CHECK(offset_ + sizeof(T) <= buf_.size());
    T value;
    std::memcpy(&value, buf_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return value;
  }

  template <typename T>
  void GetArray(std::span<T> out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (out.empty()) return;  // empty spans may carry a null data()
    size_t bytes = out.size() * sizeof(T);
    CCIDX_CHECK(offset_ + bytes <= buf_.size());
    std::memcpy(out.data(), buf_.data() + offset_, bytes);
    offset_ += bytes;
  }

  size_t offset() const { return offset_; }

 private:
  std::span<const uint8_t> buf_;
  size_t offset_;
};

/// Typed zero-copy view of a record array inside a pinned page. The records
/// are read in place from the buffer-pool frame; no deserialization copy is
/// made. Alignment is guaranteed because frames are allocator-aligned and
/// every on-page record array starts at an 8-byte-aligned offset.
template <typename Record>
std::span<const Record> ViewArray(const PageRef& ref, size_t offset,
                                  size_t count) {
  static_assert(std::is_trivially_copyable_v<Record>);
  std::span<const uint8_t> bytes = ref.data();
  CCIDX_CHECK(offset + count * sizeof(Record) <= bytes.size());
  CCIDX_CHECK(reinterpret_cast<uintptr_t>(bytes.data() + offset) %
                  alignof(Record) ==
              0);
  return {reinterpret_cast<const Record*>(bytes.data() + offset), count};
}

/// Whole-page helpers for the ubiquitous layout
///   [u32 count][u64 next_page][count * Record]
/// used by every blocked organization in the library (vertical/horizontal
/// blockings, TS structures, leaf chains).
class PageIo {
 public:
  explicit PageIo(Pager* pager) : pager_(pager) {}

  /// Max records of width `record_size` a page can hold under this layout.
  uint32_t CapacityFor(size_t record_size) const {
    return static_cast<uint32_t>((pager_->page_size() - kHeaderSize) /
                                 record_size);
  }

  /// A pinned record-array page: the record span aliases the buffer-pool
  /// frame and stays valid while `ref` is held.
  template <typename Record>
  struct RecordView {
    PageRef ref;
    std::span<const Record> records;
    PageId next = kInvalidPageId;
  };

  /// Pins one record-array page and returns a zero-copy view of it.
  template <typename Record>
  Result<RecordView<Record>> ViewRecords(PageId id) {
    auto ref = pager_->Pin(id);
    CCIDX_RETURN_IF_ERROR(ref.status());
    PageReader r(ref->data());
    uint32_t count = r.Get<uint32_t>();
    r.Get<uint32_t>();
    PageId next = r.Get<uint64_t>();
    CCIDX_CHECK(count <= CapacityFor(sizeof(Record)));
    RecordView<Record> view;
    view.records = ViewArray<Record>(*ref, kHeaderSize, count);
    view.next = next;
    view.ref = std::move(*ref);
    return view;
  }

  /// Writes one record-array page in place through a mutable pin.
  /// `records.size()` must fit.
  template <typename Record>
  Status WriteRecords(PageId id, std::span<const Record> records,
                      PageId next = kInvalidPageId) {
    CCIDX_CHECK(records.size() <= CapacityFor(sizeof(Record)));
    auto ref = pager_->PinMut(id, Pager::MutMode::kOverwrite);
    CCIDX_RETURN_IF_ERROR(ref.status());
    PageWriter w(ref->data());
    w.Put<uint32_t>(static_cast<uint32_t>(records.size()));
    w.Put<uint32_t>(0);  // reserved / alignment
    w.Put<uint64_t>(next);
    w.PutArray(records);
    // kOverwrite pins start zero-filled: no tail memset needed.
    return ref->Release();
  }

  /// Reads one record-array page; appends records to `out`, returns next id.
  template <typename Record>
  Result<PageId> ReadRecords(PageId id, std::vector<Record>* out) {
    auto view = ViewRecords<Record>(id);
    CCIDX_RETURN_IF_ERROR(view.status());
    out->insert(out->end(), view->records.begin(), view->records.end());
    return view->next;
  }

  /// Writes `records` across as many pages as needed (allocating them),
  /// chaining via the next pointer. Returns the ids, in order.
  template <typename Record>
  Result<std::vector<PageId>> WriteChain(std::span<const Record> records) {
    uint32_t cap = CapacityFor(sizeof(Record));
    CCIDX_CHECK(cap > 0);
    size_t num_pages = records.empty() ? 0 : (records.size() + cap - 1) / cap;
    std::vector<PageId> ids(num_pages);
    for (size_t i = 0; i < num_pages; ++i) ids[i] = pager_->Allocate();
    for (size_t i = 0; i < num_pages; ++i) {
      size_t begin = i * cap;
      size_t end = std::min(records.size(), begin + cap);
      PageId next = (i + 1 < num_pages) ? ids[i + 1] : kInvalidPageId;
      CCIDX_RETURN_IF_ERROR(WriteRecords<Record>(
          ids[i], records.subspan(begin, end - begin), next));
    }
    return ids;
  }

  /// Reads an entire chain starting at `head` into `out`. The next link
  /// is prefetched before this page's records are copied out, so the
  /// walk's device reads pipeline with its memcpy work (chains are always
  /// read to the end — readahead here can never fetch an unused page).
  template <typename Record>
  Status ReadChain(PageId head, std::vector<Record>* out) {
    PageId id = head;
    while (id != kInvalidPageId) {
      auto view = ViewRecords<Record>(id);
      CCIDX_RETURN_IF_ERROR(view.status());
      if (view->next != kInvalidPageId) pager_->Prefetch({&view->next, 1});
      out->insert(out->end(), view->records.begin(), view->records.end());
      id = view->next;
    }
    return Status::OK();
  }

  /// Appends every page id of a chain to `out` without freeing — the
  /// read-only half of FreeChain. Fault-atomic rebuilds enumerate the old
  /// structure's pages up front (reads may fail, nothing is mutated),
  /// build the replacement, and only then free the collected ids, which
  /// requires no device transfer and so cannot fail mid-way.
  Status VisitChain(PageId head, std::vector<PageId>* out) {
    PageId id = head;
    while (id != kInvalidPageId) {
      out->push_back(id);
      auto ref = pager_->Pin(id);
      CCIDX_RETURN_IF_ERROR(ref.status());
      PageReader r(ref->data());
      r.Get<uint32_t>();
      r.Get<uint32_t>();
      id = r.Get<uint64_t>();
      // Enumeration always walks to the end of the chain.
      if (id != kInvalidPageId) pager_->Prefetch({&id, 1});
    }
    return Status::OK();
  }

  /// Frees every page of a chain.
  Status FreeChain(PageId head) {
    PageId id = head;
    while (id != kInvalidPageId) {
      PageId next;
      {
        auto ref = pager_->Pin(id);
        CCIDX_RETURN_IF_ERROR(ref.status());
        PageReader r(ref->data());
        r.Get<uint32_t>();
        r.Get<uint32_t>();
        next = r.Get<uint64_t>();
        // The pin must be released before Free: freeing a pinned page is a
        // checked error.
      }
      CCIDX_RETURN_IF_ERROR(pager_->Free(id));
      id = next;
    }
    return Status::OK();
  }

  static constexpr size_t kHeaderSize = 16;

 private:
  Pager* pager_;
};

}  // namespace ccidx

#endif  // CCIDX_IO_PAGE_BUILDER_H_
