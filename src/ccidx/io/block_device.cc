#include "ccidx/io/block_device.h"

#include <cstring>

namespace ccidx {

BlockDevice::BlockDevice(uint32_t page_size) : page_size_(page_size) {
  CCIDX_CHECK(page_size_ >= 16);
}

PageId BlockDevice::Allocate() {
  stats_.pages_allocated++;
  if (!free_list_.empty()) {
    PageId id = free_list_.back();
    free_list_.pop_back();
    freed_[id] = false;
    std::memset(pages_[id].get(), 0, page_size_);
    return id;
  }
  PageId id = pages_.size();
  auto page = std::make_unique<uint8_t[]>(page_size_);
  std::memset(page.get(), 0, page_size_);
  pages_.push_back(std::move(page));
  freed_.push_back(false);
  return id;
}

bool BlockDevice::IsLive(PageId id) const {
  return id < pages_.size() && !freed_[id];
}

Status BlockDevice::Free(PageId id) {
  if (!IsLive(id)) {
    return Status::InvalidArgument("free of invalid or already-freed page " +
                                   std::to_string(id));
  }
  freed_[id] = true;
  free_list_.push_back(id);
  stats_.pages_freed++;
  return Status::OK();
}

bool BlockDevice::ShouldFail() {
  if (fail_after_ < 0) return false;
  if (fail_after_ == 0) return true;
  fail_after_--;
  return false;
}

Status BlockDevice::Read(PageId id, std::span<uint8_t> out) {
  if (!IsLive(id)) {
    return Status::IoError("read of invalid page " + std::to_string(id));
  }
  if (out.size() != page_size_) {
    return Status::InvalidArgument("read buffer size mismatch");
  }
  if (ShouldFail()) {
    return Status::IoError("injected device failure (read)");
  }
  std::memcpy(out.data(), pages_[id].get(), page_size_);
  stats_.device_reads++;
  return Status::OK();
}

Status BlockDevice::Write(PageId id, std::span<const uint8_t> in) {
  if (!IsLive(id)) {
    return Status::IoError("write of invalid page " + std::to_string(id));
  }
  if (in.size() != page_size_) {
    return Status::InvalidArgument("write buffer size mismatch");
  }
  if (ShouldFail()) {
    return Status::IoError("injected device failure (write)");
  }
  std::memcpy(pages_[id].get(), in.data(), page_size_);
  stats_.device_writes++;
  return Status::OK();
}

}  // namespace ccidx
