#include "ccidx/io/block_device.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace ccidx {

BlockDeviceOptions DeviceOptionsFromEnv() {
  BlockDeviceOptions opt;
  if (const char* env = std::getenv("CCIDX_DEVICE")) {
    if (*env != '\0') opt.backend = env;
  }
  if (const char* env = std::getenv("CCIDX_DEVICE_DIR")) {
    opt.dir = env;
  }
  if (const char* env = std::getenv("CCIDX_DEVICE_LATENCY_US")) {
    long v = std::strtol(env, nullptr, 10);
    if (v > 0) opt.read_latency_us = static_cast<uint32_t>(v);
  }
  return opt;
}

BlockDevice::BlockDevice(uint32_t page_size)
    : BlockDevice(page_size, DeviceOptionsFromEnv()) {}

BlockDevice::BlockDevice(uint32_t page_size,
                         const BlockDeviceOptions& options)
    : page_size_(page_size), latency_us_(options.read_latency_us) {
  CCIDX_CHECK(page_size_ >= 16);
  if (options.backend == "file") {
    auto backend = MakeFileStorageBackend(page_size_, options.dir);
    // A requested-but-unavailable file backend must not silently degrade
    // to mem: CI's file-backend job would pass without testing anything.
    CCIDX_CHECK(backend.ok());
    backend_ = std::move(backend).value();
  } else {
    CCIDX_CHECK(options.backend == "mem");
    backend_ = MakeMemStorageBackend(page_size_);
  }
}

void BlockDevice::InjectReadLatency() const {
  if (latency_us_ == 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(latency_us_));
}

PageId BlockDevice::Allocate() {
  std::unique_lock lock(mu_);
  pages_allocated_.fetch_add(1, std::memory_order_relaxed);
  if (!free_list_.empty()) {
    PageId id = free_list_.back();
    free_list_.pop_back();
    freed_[id] = false;
    CCIDX_CHECK(backend_->ZeroPage(id).ok());
    return id;
  }
  PageId id = freed_.size();
  freed_.push_back(false);
  // Capacity growth cannot be surfaced from Allocate (the historical
  // signature returns the id); an out-of-space backend is fatal, like an
  // out-of-memory simulator.
  CCIDX_CHECK(backend_->EnsureCapacity(freed_.size()).ok());
  if (id < backend_hwm_) {
    // The table was shrunk past this id by a recovery-time
    // RestoreAllocation, so the backend page it re-covers holds stale
    // bytes — zero it (and count the write) to keep the "allocated pages
    // read as zeros" contract. Genuinely-new backend pages already read
    // as zeros (mem calloc / file ftruncate growth), so the common bulk
    // path pays no extra page write.
    CCIDX_CHECK(backend_->ZeroPage(id).ok());
    device_writes_.fetch_add(1, std::memory_order_relaxed);
  } else {
    backend_hwm_ = freed_.size();
  }
  return id;
}

bool BlockDevice::IsLive(PageId id) const {
  return id < freed_.size() && !freed_[id];
}

Status BlockDevice::Free(PageId id) {
  std::unique_lock lock(mu_);
  if (!IsLive(id)) {
    return Status::InvalidArgument("free of invalid or already-freed page " +
                                   std::to_string(id));
  }
  freed_[id] = true;
  free_list_.push_back(id);
  pages_freed_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

bool BlockDevice::ShouldFail() {
  // Fast path: fault injection disabled (the only concurrent case; tests
  // that inject faults are single-threaded, but the budget is still
  // consumed race-free under fail_mu_).
  if (fail_after_.load(std::memory_order_relaxed) < 0) return false;
  std::lock_guard lock(fail_mu_);
  int64_t budget = fail_after_.load(std::memory_order_relaxed);
  if (budget < 0) return false;
  if (budget == 0) return true;
  fail_after_.store(budget - 1, std::memory_order_relaxed);
  return false;
}

Status BlockDevice::Read(PageId id, std::span<uint8_t> out) {
  {
    std::shared_lock lock(mu_);
    if (crashed_.load(std::memory_order_relaxed)) {
      return Status::IoError("device crashed (simulated power loss)");
    }
    if (!IsLive(id)) {
      return Status::IoError("read of invalid page " + std::to_string(id));
    }
    if (out.size() != page_size_) {
      return Status::InvalidArgument("read buffer size mismatch");
    }
    if (ShouldFail()) {
      return Status::IoError("injected device failure (read)");
    }
    CCIDX_RETURN_IF_ERROR(backend_->ReadPage(id, out.data()));
    device_reads_.fetch_add(1, std::memory_order_relaxed);
  }
  InjectReadLatency();
  return Status::OK();
}

Status BlockDevice::ReadBatch(std::span<const PageReadRequest> reqs) {
  if (reqs.empty()) return Status::OK();
  size_t approved = 0;
  Status first_err;
  {
    std::shared_lock lock(mu_);
    if (crashed_.load(std::memory_order_relaxed)) {
      return Status::IoError("device crashed (simulated power loss)");
    }
    // Serial-equivalent validation and fault accounting: walk the requests
    // in order, consuming fault budget per request, and stop at the first
    // failure — the approved prefix is exactly the set of reads a serial
    // loop would have completed before surfacing that same error.
    for (const PageReadRequest& r : reqs) {
      if (!IsLive(r.id)) {
        first_err =
            Status::IoError("read of invalid page " + std::to_string(r.id));
        break;
      }
      if (r.out == nullptr) {
        first_err = Status::InvalidArgument("null batch read buffer");
        break;
      }
      if (ShouldFail()) {
        first_err = Status::IoError("injected device failure (read)");
        break;
      }
      approved++;
    }
    if (approved > 0) {
      CCIDX_RETURN_IF_ERROR(backend_->ReadPages(reqs.data(), approved));
      device_reads_.fetch_add(approved, std::memory_order_relaxed);
      read_batches_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // One delay for the whole batch: all approved requests were queued on
  // the device concurrently. This is the overlap benchmarks measure.
  if (approved > 0) InjectReadLatency();
  return first_err;
}

Status BlockDevice::Write(PageId id, std::span<const uint8_t> in) {
  std::shared_lock lock(mu_);
  if (crashed_.load(std::memory_order_relaxed)) {
    return Status::IoError("device crashed (simulated power loss)");
  }
  if (!IsLive(id)) {
    return Status::IoError("write of invalid page " + std::to_string(id));
  }
  if (in.size() != page_size_) {
    return Status::InvalidArgument("write buffer size mismatch");
  }
  if (ShouldFail()) {
    return Status::IoError("injected device failure (write)");
  }
  if (torn_write_after_.load(std::memory_order_relaxed) >= 0) {
    std::lock_guard tlock(fail_mu_);
    int64_t budget = torn_write_after_.load(std::memory_order_relaxed);
    if (budget == 0) {
      // Torn page: only the first half of the new content reaches the
      // device; the old second half survives. One-shot, then disarmed.
      torn_write_after_.store(-1, std::memory_order_relaxed);
      std::vector<uint8_t> torn(page_size_);
      CCIDX_RETURN_IF_ERROR(backend_->ReadPage(id, torn.data()));
      std::memcpy(torn.data(), in.data(), page_size_ / 2);
      CCIDX_RETURN_IF_ERROR(backend_->WritePage(id, torn.data()));
      device_writes_.fetch_add(1, std::memory_order_relaxed);
      return Status::IoError("injected torn page write");
    } else if (budget > 0) {
      torn_write_after_.store(budget - 1, std::memory_order_relaxed);
    }
  }
  CCIDX_RETURN_IF_ERROR(backend_->WritePage(id, in.data()));
  device_writes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status BlockDevice::SyncData() {
  // No allocation-table access: the backend's sync path is independently
  // thread-safe (fdatasync on a stable fd / no-op for mem).
  return backend_->SyncData();
}

BlockDevice::AllocationSnapshot BlockDevice::SnapshotAllocation() const {
  std::shared_lock lock(mu_);
  AllocationSnapshot snap;
  snap.total_pages = freed_.size();
  snap.freed = freed_;
  return snap;
}

void BlockDevice::RestoreAllocation(const AllocationSnapshot& snap) {
  std::unique_lock lock(mu_);
  CCIDX_CHECK(snap.freed.size() == snap.total_pages);
  freed_ = snap.freed;
  // The address space never shrinks on the backend: pages beyond the
  // snapshot's high-water mark keep their storage but become unreachable
  // (not in freed_, so never live). Recovery re-grows through Allocate,
  // which zeroes on reuse, so stale backing bytes are harmless.
  free_list_.clear();
  for (PageId id = 0; id < freed_.size(); ++id) {
    if (freed_[id]) free_list_.push_back(id);
  }
  CCIDX_CHECK(backend_->EnsureCapacity(freed_.size()).ok());
  backend_hwm_ = std::max(backend_hwm_, static_cast<uint64_t>(freed_.size()));
}

bool BlockDevice::is_live(PageId id) const {
  std::shared_lock lock(mu_);
  return IsLive(id);
}

uint64_t BlockDevice::live_pages() const {
  std::shared_lock lock(mu_);
  return freed_.size() - free_list_.size();
}

uint64_t BlockDevice::total_pages() const {
  std::shared_lock lock(mu_);
  return freed_.size();
}

IoStats BlockDevice::stats() const {
  IoStats s;
  s.device_reads = device_reads_.load(std::memory_order_relaxed);
  s.device_writes = device_writes_.load(std::memory_order_relaxed);
  s.read_batches = read_batches_.load(std::memory_order_relaxed);
  s.pages_allocated = pages_allocated_.load(std::memory_order_relaxed);
  s.pages_freed = pages_freed_.load(std::memory_order_relaxed);
  return s;
}

void BlockDevice::ResetStats() {
  device_reads_.store(0, std::memory_order_relaxed);
  device_writes_.store(0, std::memory_order_relaxed);
  read_batches_.store(0, std::memory_order_relaxed);
  pages_allocated_.store(0, std::memory_order_relaxed);
  pages_freed_.store(0, std::memory_order_relaxed);
}

}  // namespace ccidx
