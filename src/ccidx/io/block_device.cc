#include "ccidx/io/block_device.h"

#include <cstring>

namespace ccidx {

BlockDevice::BlockDevice(uint32_t page_size) : page_size_(page_size) {
  CCIDX_CHECK(page_size_ >= 16);
}

PageId BlockDevice::Allocate() {
  std::unique_lock lock(mu_);
  pages_allocated_.fetch_add(1, std::memory_order_relaxed);
  if (!free_list_.empty()) {
    PageId id = free_list_.back();
    free_list_.pop_back();
    freed_[id] = false;
    std::memset(pages_[id].get(), 0, page_size_);
    return id;
  }
  PageId id = pages_.size();
  auto page = std::make_unique<uint8_t[]>(page_size_);
  std::memset(page.get(), 0, page_size_);
  pages_.push_back(std::move(page));
  freed_.push_back(false);
  return id;
}

bool BlockDevice::IsLive(PageId id) const {
  return id < pages_.size() && !freed_[id];
}

Status BlockDevice::Free(PageId id) {
  std::unique_lock lock(mu_);
  if (!IsLive(id)) {
    return Status::InvalidArgument("free of invalid or already-freed page " +
                                   std::to_string(id));
  }
  freed_[id] = true;
  free_list_.push_back(id);
  pages_freed_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

bool BlockDevice::ShouldFail() {
  // Fast path: fault injection disabled (the only concurrent case; tests
  // that inject faults are single-threaded, but the budget is still
  // consumed race-free under fail_mu_).
  if (fail_after_.load(std::memory_order_relaxed) < 0) return false;
  std::lock_guard lock(fail_mu_);
  int64_t budget = fail_after_.load(std::memory_order_relaxed);
  if (budget < 0) return false;
  if (budget == 0) return true;
  fail_after_.store(budget - 1, std::memory_order_relaxed);
  return false;
}

Status BlockDevice::Read(PageId id, std::span<uint8_t> out) {
  std::shared_lock lock(mu_);
  if (!IsLive(id)) {
    return Status::IoError("read of invalid page " + std::to_string(id));
  }
  if (out.size() != page_size_) {
    return Status::InvalidArgument("read buffer size mismatch");
  }
  if (ShouldFail()) {
    return Status::IoError("injected device failure (read)");
  }
  std::memcpy(out.data(), pages_[id].get(), page_size_);
  device_reads_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status BlockDevice::Write(PageId id, std::span<const uint8_t> in) {
  std::shared_lock lock(mu_);
  if (!IsLive(id)) {
    return Status::IoError("write of invalid page " + std::to_string(id));
  }
  if (in.size() != page_size_) {
    return Status::InvalidArgument("write buffer size mismatch");
  }
  if (ShouldFail()) {
    return Status::IoError("injected device failure (write)");
  }
  std::memcpy(pages_[id].get(), in.data(), page_size_);
  device_writes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

uint64_t BlockDevice::live_pages() const {
  std::shared_lock lock(mu_);
  return pages_.size() - free_list_.size();
}

uint64_t BlockDevice::total_pages() const {
  std::shared_lock lock(mu_);
  return pages_.size();
}

IoStats BlockDevice::stats() const {
  IoStats s;
  s.device_reads = device_reads_.load(std::memory_order_relaxed);
  s.device_writes = device_writes_.load(std::memory_order_relaxed);
  s.pages_allocated = pages_allocated_.load(std::memory_order_relaxed);
  s.pages_freed = pages_freed_.load(std::memory_order_relaxed);
  return s;
}

void BlockDevice::ResetStats() {
  device_reads_.store(0, std::memory_order_relaxed);
  device_writes_.store(0, std::memory_order_relaxed);
  pages_allocated_.store(0, std::memory_order_relaxed);
  pages_freed_.store(0, std::memory_order_relaxed);
}

}  // namespace ccidx
