// Write-ahead log of page before-images + checkpoint/recovery
// (DESIGN.md §13).
//
// The engine's update paths are fault-atomic *in process* (AllocationScope
// rollback, free-by-id installs), but nothing survives a crash: a B+-tree
// split chain, a Bentley–Saxe level merge, or a corner-structure cascade
// interrupted mid-flight leaves torn multi-page state on the device. The
// WAL converts that story into real crash durability in the generic-xlog
// style (log the before-image of every page a transaction touches, replay
// on open — the mtree_am2 pattern named in ROADMAP.md):
//
//   * Rollback-journal (undo) logging, force-at-commit. Every outermost
//     Pager::WalScope is one transaction. The first mutable touch of a
//     pre-existing page logs its full before-image; page allocations and
//     frees log id records. At commit the txn's touched pages are forced
//     to the device (log first — see the ordering rule below), the device
//     is data-synced, and a commit record (carrying registered metadata
//     blobs) is appended and group-synced. There is no redo: a committed
//     txn's pages are already durable, so recovery never rolls forward.
//   * WAL-before-data: no data page reaches the device before every log
//     record appended so far is synced (hooked into the pager's write-back
//     and uncached-release paths). An uncommitted txn's page writes may
//     therefore reach the device early (steal) — recovery undoes them from
//     the logged before-images, which also repairs torn page writes.
//   * Group commit: concurrent committers elect one sync leader; a commit
//     whose records were already covered by another leader's fdatasync
//     returns without touching the device (followers are counted).
//   * Checkpoint: with writers quiesced (the epoch gate's write side), the
//     pool is flushed, the device data-synced, and the log is rewritten as
//     a single checkpoint record carrying the allocation snapshot and the
//     current metadata — truncating the log to O(1).
//   * Recovery: parse the log (a torn tail is detected by length/CRC and
//     truncated), collect the RESOLVED txn set (committed or in-process
//     aborted — an aborted op's surviving state was forced and later txns
//     may have built on it), rebuild the allocation state from the
//     checkpoint snapshot plus resolved alloc/free records in log order,
//     then restore the before-images of every *unresolved* (in-flight at
//     crash) record in reverse log order. The result is exactly the state
//     after the last committed transaction.
//
// Interleaving correctness: records of concurrent writers interleave in
// the log, tagged by txn id. A later txn's before-image of a shared page
// captures the earlier txn's committed content, so reverse-order undo of
// the uncommitted set lands on the last committed version. (Two *live*
// txns never mutate the same page concurrently — that is the families'
// in-epoch latching contract, DESIGN.md §11.)
//
// Metadata registry: structures register named providers
// (`SetMetaProvider`); every commit appends all registered blobs into its
// commit record and recovery returns the freshest committed blobs. With
// concurrent committers, log order does not equal collection order — a
// commit record later in the log can carry a snapshot collected earlier,
// and a last-in-log overlay would restore stale metas. Each snapshot
// therefore carries a *collection ticket* drawn from a global counter
// before the providers run, and recovery keeps the max-ticket blob per
// key instead of the last one in the log (holding the append lock across
// provider calls instead would invert against structure-latch → append
// paths and deadlock). Provider reads are exact under a single writer and
// at quiesced checkpoints; with concurrent writers a snapshot may still
// observe another txn's mid-flight (internally consistent) state, which
// the quiesced checkpoint supersedes.
//
// Crash injection for tests: SetCrashAfterRecords(k) makes the k-th
// subsequent append vanish (or leave a torn prefix) and flips the wal and
// the BlockDevice into a crashed state where every transfer fails — the
// in-process equivalent of SIGKILL. Recover() clears both and restores
// the committed state.

#ifndef CCIDX_IO_WAL_H_
#define CCIDX_IO_WAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "ccidx/common/status.h"
#include "ccidx/io/block_device.h"

namespace ccidx {

class Pager;

// ---------------------------------------------------------------------------
// Flat byte encode/decode helpers (record payloads, family metas)
// ---------------------------------------------------------------------------

/// Append-only little-endian byte encoder for WAL payloads and the family
/// metadata blobs carried in commit/checkpoint records.
class WalEncoder {
 public:
  void PutU16(uint16_t v) { PutRaw(&v, sizeof v); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof v); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof v); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof v); }
  void PutBytes(std::span<const uint8_t> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  /// Length-prefixed (u32) byte string.
  void PutBlob(std::span<const uint8_t> b) {
    PutU32(static_cast<uint32_t>(b.size()));
    PutBytes(b);
  }
  /// Raw POD array (same-process format: native endianness/layout).
  template <typename T>
  void PutPodVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    PutU64(v.size());
    if (!v.empty()) {
      PutRaw(v.data(), v.size() * sizeof(T));
    }
  }

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  void PutRaw(const void* p, size_t n) {
    const uint8_t* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<uint8_t> buf_;
};

/// Matching decoder. All getters fail soft: `ok()` latches false on
/// underrun and every subsequent value is zero, so a truncated or corrupt
/// blob can never read out of bounds.
class WalDecoder {
 public:
  explicit WalDecoder(std::span<const uint8_t> b) : buf_(b) {}

  uint16_t GetU16() { return GetRaw<uint16_t>(); }
  uint32_t GetU32() { return GetRaw<uint32_t>(); }
  uint64_t GetU64() { return GetRaw<uint64_t>(); }
  int64_t GetI64() { return GetRaw<int64_t>(); }
  std::span<const uint8_t> GetBytes(size_t n) {
    if (!Need(n)) return {};
    std::span<const uint8_t> out = buf_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  std::span<const uint8_t> GetBlob() {
    uint32_t n = GetU32();
    return GetBytes(n);
  }
  template <typename T>
  std::vector<T> GetPodVector() {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = GetU64();
    if (!Need(n * sizeof(T))) return {};
    std::vector<T> out(n);
    if (n > 0) std::memcpy(out.data(), buf_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return out;
  }

  bool ok() const { return ok_; }
  size_t remaining() const { return buf_.size() - pos_; }

 private:
  bool Need(size_t n) {
    if (!ok_ || buf_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }
  template <typename T>
  T GetRaw() {
    T v{};
    if (!Need(sizeof(T))) return v;
    std::memcpy(&v, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  std::span<const uint8_t> buf_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Log storage
// ---------------------------------------------------------------------------

/// Byte-stream backing for the log: an append-only blob with sync and
/// whole-log rewrite (checkpoint truncation). The mem flavor keeps the
/// log in process memory (Sync is a no-op) — it survives the simulated
/// crash because the "disk" of the mem BlockDevice does too. The file
/// flavor appends through a buffered fd and syncs with fdatasync.
class WalStorage {
 public:
  virtual ~WalStorage() = default;
  virtual const char* name() const = 0;
  virtual Status Append(std::span<const uint8_t> bytes) = 0;
  virtual Status Sync() = 0;
  virtual Status ReadAll(std::vector<uint8_t>* out) = 0;
  /// Crash-atomically replaces the whole log with `bytes` (checkpoint
  /// truncation; callers are quiesced). The file flavor stages the new
  /// log in a temp file and rename(2)s it over the old one, so power
  /// loss at any point leaves a complete old or complete new log.
  virtual Status Reset(std::span<const uint8_t> bytes) = 0;
  virtual uint64_t size() const = 0;
};

std::unique_ptr<WalStorage> MakeMemWalStorage();
/// `path` is the log file (created if absent, truncated at Reset).
std::unique_ptr<WalStorage> MakeFileWalStorage(const std::string& path);

// ---------------------------------------------------------------------------
// Wal
// ---------------------------------------------------------------------------

enum class WalRecordType : uint16_t {
  kPageImage = 1,  // [u64 page][page bytes]            before-image
  kAlloc = 2,      // [u64 page]
  kFree = 3,       // [u64 page][u16 has_image][image?] before-image unless
                   //   the page was allocated by this very txn
  kCommit = 4,     // [u64 ticket][u32 n] n x ([u16 klen][key][u32 vlen][bytes])
  kCheckpoint = 5, // [u64 total][u64 nbits][bitmap] + metas as kCommit
  kAbort = 6,      // empty; txn resolved without commit (see below)
};

/// A decoded log record (recovery and tests).
struct WalRecord {
  WalRecordType type{};
  uint64_t txn = 0;
  std::vector<uint8_t> payload;
};

class Wal {
 public:
  enum class CrashMode : uint8_t {
    kClean,  // the record at the kill point simply never reaches the log
    kTorn,   // a partial prefix of it does (torn final record)
  };

  struct RecoveryInfo {
    uint64_t records_scanned = 0;
    uint64_t committed_txns = 0;
    uint64_t images_restored = 0;
    bool torn_tail = false;
    /// Metadata of the last committed state: checkpoint blobs overlaid by
    /// committed txns' commit blobs, freshest collection ticket winning
    /// per key.
    std::map<std::string, std::vector<uint8_t>> metas;
  };

  /// The wal logs for (and recovers) `device`; the log itself lives in
  /// `storage`. Does not write anything — Pager::AttachWal (or an explicit
  /// Checkpoint) establishes the initial checkpoint baseline.
  Wal(BlockDevice* device, std::unique_ptr<WalStorage> storage);

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // --- transaction API (driven by Pager::WalScope) -----------------------

  uint64_t BeginTxn() {
    return next_txn_.fetch_add(1, std::memory_order_relaxed);
  }
  Status LogPageImage(uint64_t txn, PageId id,
                      std::span<const uint8_t> image);
  Status LogAlloc(uint64_t txn, PageId id);
  /// `image` empty => the page was allocated within this txn (undo needs
  /// no content, only the allocation replay).
  Status LogFree(uint64_t txn, PageId id, std::span<const uint8_t> image);
  /// Appends the commit record (with every registered meta blob) and
  /// group-syncs it. The caller has already forced the txn's data pages
  /// and data-synced the device (WalScope::Commit ordering).
  Status CommitTxn(uint64_t txn);

  /// Marks an in-process-aborted txn resolved. The caller (WalScope's
  /// destructor) has already forced the txn's surviving page state to the
  /// device, so recovery must NOT undo it: a later committed txn may have
  /// built on what the aborted op left behind (the families' documented
  /// pre-or-post-op failure state). Not synced — any later commit's group
  /// sync carries it; if it is lost, the txn is undone from its (already
  /// durable) before-images instead, which is the coherent pre-op state.
  Status AbortTxn(uint64_t txn);

  /// WAL-before-data barrier: returns once every record appended so far
  /// is durable. One relaxed load when nothing is pending; group-synced
  /// otherwise. Called by the pager before any data-page device write.
  Status SyncBeforeData();

  // --- metadata registry -------------------------------------------------

  using MetaProvider = std::function<std::vector<uint8_t>()>;
  /// Registers (or replaces; empty fn erases) the provider for `key`.
  /// Providers run on committing threads with no wal lock held (they may
  /// take structure latches) — keep them cheap and internally
  /// synchronized, and never let them log records or commit.
  void SetMetaProvider(const std::string& key, MetaProvider fn);

  // --- checkpoint / recovery ---------------------------------------------

  /// Rewrites the log as one checkpoint record: current allocation
  /// snapshot + fresh provider metas. Caller must quiesce writers (epoch
  /// gate write side) and pass the pager so dirty pool pages are forced
  /// first (`nullptr` skips the flush when there is no pool to flush).
  Status Checkpoint(Pager* pager);

  /// Crash recovery: discards the pager's (pre-crash, volatile) cache,
  /// clears the crashed flags, and restores the device to the exact state
  /// after the last committed txn (see file comment). Ends with a fresh
  /// checkpoint carrying the recovered metas, so the log is truncated and
  /// a second crash re-recovers to the same state.
  Result<RecoveryInfo> Recover(Pager* pager);

  // --- crash injection ---------------------------------------------------

  /// After `more` further record appends, the next append "crashes": the
  /// record is dropped (kClean) or a torn prefix of it is written (kTorn),
  /// the wal enters the crashed state, and the BlockDevice is crashed too
  /// (every transfer fails until Recover). `more < 0` disarms.
  void SetCrashAfterRecords(int64_t more, CrashMode mode = CrashMode::kClean);
  bool crashed() const { return crashed_.load(std::memory_order_relaxed); }

  // --- introspection -----------------------------------------------------

  uint64_t records() const { return records_.load(std::memory_order_relaxed); }
  uint64_t commits() const { return commits_.load(std::memory_order_relaxed); }
  uint64_t syncs() const { return syncs_.load(std::memory_order_relaxed); }
  /// Commits whose sync was covered by another committer's fdatasync.
  uint64_t group_follows() const {
    return group_follows_.load(std::memory_order_relaxed);
  }
  uint64_t checkpoints() const {
    return checkpoints_.load(std::memory_order_relaxed);
  }
  uint64_t log_bytes() const { return storage_->size(); }
  const char* storage_name() const { return storage_->name(); }
  BlockDevice* device() const { return device_; }

  /// Parses the current log (tests). Stops at a torn tail.
  Status ReadRecords(std::vector<WalRecord>* out, bool* torn_tail);

 private:
  // Encodes outside append_mu_, then appends under it (honoring the crash
  // trigger and the sticky append-failure latch). lsn = running record
  // count.
  Status AppendRecord(WalRecordType type, uint64_t txn,
                      std::span<const uint8_t> payload);
  // Leader-elected sync of everything appended up to now.
  Status GroupSync(uint64_t lsn);
  // A meta snapshot plus the collection ticket drawn (from meta_clock_)
  // before its providers ran — recovery keeps the max ticket per key.
  struct MetaSnapshot {
    uint64_t ticket = 0;
    std::vector<std::pair<std::string, std::vector<uint8_t>>> entries;
  };
  MetaSnapshot CollectMetas();
  static void EncodeMetas(WalEncoder* enc, const MetaSnapshot& metas);
  // Builds the checkpoint record payload from the device's current
  // allocation state and `metas`, and swaps it in as the whole log.
  Status RewriteAsCheckpoint(const MetaSnapshot& metas);

  BlockDevice* device_;
  std::unique_ptr<WalStorage> storage_;

  // Append side: serializes record encoding + storage appends.
  std::mutex append_mu_;
  std::atomic<uint64_t> append_lsn_{0};  // records appended (and their count)
  std::atomic<uint64_t> records_{0};
  int64_t crash_after_ = -1;             // guarded by append_mu_
  CrashMode crash_mode_ = CrashMode::kClean;  // guarded by append_mu_
  std::atomic<bool> crashed_{false};
  // Latched on a real storage append/sync failure (EIO/ENOSPC — not the
  // simulated crash): the log may silently be missing a record, so every
  // later append (and thus any commit) is refused until a checkpoint
  // rewrites the log or recovery replays it.
  std::atomic<bool> append_failed_{false};

  // Group-commit sync state.
  std::mutex sync_mu_;
  std::condition_variable sync_cv_;
  uint64_t synced_lsn_ = 0;        // guarded by sync_mu_
  bool sync_in_progress_ = false;  // guarded by sync_mu_
  std::atomic<uint64_t> synced_lsn_relaxed_{0};  // fast-path mirror

  std::atomic<uint64_t> next_txn_{1};
  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> syncs_{0};
  std::atomic<uint64_t> group_follows_{0};
  std::atomic<uint64_t> checkpoints_{0};

  std::mutex meta_mu_;
  std::map<std::string, MetaProvider> meta_providers_;
  // Collection-ticket source for MetaSnapshot (see CollectMetas).
  std::atomic<uint64_t> meta_clock_{0};
};

}  // namespace ccidx

#endif  // CCIDX_IO_WAL_H_
