#include "ccidx/io/page_builder.h"

// All of PageIo is templated / inline; this translation unit exists so the
// module has a home for future non-template helpers and keeps the build
// graph uniform (one .cc per header).
