// I/O accounting: the ground-truth metric of this reproduction.
//
// Every bound in the paper is stated in number of disk-block transfers
// ("IO's"). The simulated BlockDevice increments these counters on each
// page transfer; the Pager additionally tracks buffer-pool hits/misses.
// Benchmarks report device reads+writes with a cold cache, which is exactly
// the quantity the theorems bound.
//
// IoStats itself is a plain value snapshot. The live counters behind it
// (BlockDevice internals, per-shard Pager counters) are updated without
// cross-thread contention and *merged* into one IoStats when read
// (DESIGN.md §7), so concurrent query serving never serializes on stats.

#ifndef CCIDX_IO_IO_STATS_H_
#define CCIDX_IO_IO_STATS_H_

#include <cstdint>

namespace ccidx {

/// Counters for page transfers between "secondary storage" and memory.
struct IoStats {
  uint64_t device_reads = 0;   ///< pages read from the device
  uint64_t device_writes = 0;  ///< pages written to the device
  uint64_t read_batches = 0;   ///< ReadBatch calls (>= 1 approved request)
  uint64_t cache_hits = 0;     ///< pager requests served from the pool
  uint64_t cache_misses = 0;   ///< pager requests that went to the device
  uint64_t pin_requests = 0;   ///< Pin/PinMut/PinNew calls (logical accesses)
  uint64_t pages_allocated = 0;
  uint64_t pages_freed = 0;

  /// Total device transfers — the paper's "number of IO's".
  uint64_t TotalIos() const { return device_reads + device_writes; }

  /// Lvalue-qualified so `dev.stats().Reset()` fails to compile now that
  /// stats() returns a snapshot by value — resetting the temporary would
  /// silently do nothing. Use BlockDevice::ResetStats() / Pager::ResetStats()
  /// to clear the live counters.
  void Reset() & { *this = IoStats{}; }
};

/// Snapshot/diff helper: `after - before` yields the per-operation cost.
/// Tests and benches snapshot the counters, run the operation, and
/// subtract, instead of hand-computing one delta per field.
inline IoStats operator-(const IoStats& a, const IoStats& b) {
  IoStats d;
  d.device_reads = a.device_reads - b.device_reads;
  d.device_writes = a.device_writes - b.device_writes;
  d.read_batches = a.read_batches - b.read_batches;
  d.cache_hits = a.cache_hits - b.cache_hits;
  d.cache_misses = a.cache_misses - b.cache_misses;
  d.pin_requests = a.pin_requests - b.pin_requests;
  d.pages_allocated = a.pages_allocated - b.pages_allocated;
  d.pages_freed = a.pages_freed - b.pages_freed;
  return d;
}

/// Merge helper for per-shard / per-thread counter aggregation.
inline IoStats operator+(const IoStats& a, const IoStats& b) {
  IoStats s;
  s.device_reads = a.device_reads + b.device_reads;
  s.device_writes = a.device_writes + b.device_writes;
  s.read_batches = a.read_batches + b.read_batches;
  s.cache_hits = a.cache_hits + b.cache_hits;
  s.cache_misses = a.cache_misses + b.cache_misses;
  s.pin_requests = a.pin_requests + b.pin_requests;
  s.pages_allocated = a.pages_allocated + b.pages_allocated;
  s.pages_freed = a.pages_freed + b.pages_freed;
  return s;
}

}  // namespace ccidx

#endif  // CCIDX_IO_IO_STATS_H_
