// Pager: write-back LRU buffer pool over a BlockDevice, with zero-copy
// pinned-page access (DESIGN.md §3).
//
// The paper assumes at least O(B^2) units of main memory (§1.1); with pages
// of B units that is on the order of B resident pages. The pool capacity is
// configurable; benchmarks call DropCache() before each measured operation
// so device I/O counts reflect the worst case the theorems bound.
//
// Access model: callers pin pages and operate on spans into the buffer-pool
// frame itself (PostgreSQL-style page accessors), never on private copies.
//   * Pin(id)        -> PageRef     shared, read-only view
//   * PinMut(id)     -> MutPageRef  exclusive-intent, dirties the frame
//   * PinNew()       -> MutPageRef  allocate + pin a zeroed page
// A pinned frame is ineligible for eviction; eviction skips pinned frames
// in LRU order and reports ResourceExhausted when every frame is pinned.
//
// When capacity_pages == 0 the pool is disabled and every pin is a private
// transient copy: Pin costs one device read, MutPageRef::Release() costs
// one device write. That reproduces the historical uncached Read/Write
// cost model exactly, which the fault-injection and I/O-count tests rely
// on. The copy-based Read/Write survive as thin wrappers over pins.

#ifndef CCIDX_IO_PAGER_H_
#define CCIDX_IO_PAGER_H_

#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ccidx/common/status.h"
#include "ccidx/io/block_device.h"

namespace ccidx {

class Pager;

namespace internal {

/// One resident page of the buffer pool. Frames with pins > 0 are
/// eviction-ineligible; mut_pins tracks the subset of pins that may write
/// (Flush must not clear the dirty bit under an active writer).
struct PageFrame {
  PageId id = kInvalidPageId;
  bool dirty = false;
  uint32_t pins = 0;
  uint32_t mut_pins = 0;
  std::unique_ptr<uint8_t[]> data;
};

}  // namespace internal

/// RAII shared read pin. While alive, the page's frame stays resident and
/// `data()` is a stable view into the buffer pool (no copy). Releasing a
/// read pin never performs I/O.
class PageRef {
 public:
  PageRef() = default;
  PageRef(PageRef&& o) noexcept { MoveFrom(o); }
  PageRef& operator=(PageRef&& o) noexcept {
    if (this != &o) {
      Release();
      MoveFrom(o);
    }
    return *this;
  }
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  ~PageRef() { Release(); }

  bool valid() const { return pager_ != nullptr; }
  PageId id() const { return id_; }

  /// Read-only view of the whole page. Valid until Release()/destruction.
  std::span<const uint8_t> data() const {
    CCIDX_CHECK(valid());
    return {data_, size_};
  }

  /// Unpins early (idempotent). Never performs I/O.
  void Release();

 private:
  friend class Pager;

  void MoveFrom(PageRef& o) {
    pager_ = o.pager_;
    frame_ = o.frame_;
    transient_ = std::move(o.transient_);
    id_ = o.id_;
    data_ = o.data_;
    size_ = o.size_;
    o.pager_ = nullptr;
    o.frame_ = nullptr;
    o.data_ = nullptr;
  }

  Pager* pager_ = nullptr;
  internal::PageFrame* frame_ = nullptr;  // null => transient (uncached)
  std::unique_ptr<uint8_t[]> transient_;
  PageId id_ = kInvalidPageId;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

/// RAII mutable pin. Obtaining one marks the frame dirty; the write-back
/// happens on eviction or Flush (cached) or at Release() (uncached), always
/// on a Status-returning path. Prefer `return ref.Release();` over relying
/// on the destructor: a destructor write-back failure cannot be returned
/// and is parked as the pager's deferred error instead.
class MutPageRef {
 public:
  MutPageRef() = default;
  MutPageRef(MutPageRef&& o) noexcept { MoveFrom(o); }
  MutPageRef& operator=(MutPageRef&& o) noexcept;
  MutPageRef(const MutPageRef&) = delete;
  MutPageRef& operator=(const MutPageRef&) = delete;
  ~MutPageRef();

  bool valid() const { return pager_ != nullptr; }
  PageId id() const { return id_; }

  /// Writable view of the whole page. Valid until Release()/destruction.
  std::span<uint8_t> data() {
    CCIDX_CHECK(valid());
    return {data_, size_};
  }

  /// Unpins (idempotent). Uncached pins write the page back to the device
  /// here and surface the device Status; cached pins return OK (the dirty
  /// frame is flushed later by eviction or Flush).
  Status Release();

 private:
  friend class Pager;

  // Destructor/assignment path: releases, parking any write-back failure
  // as the pager's deferred error (a destructor cannot return Status).
  void ReleaseToDeferred();

  void MoveFrom(MutPageRef& o) {
    pager_ = o.pager_;
    frame_ = o.frame_;
    transient_ = std::move(o.transient_);
    id_ = o.id_;
    data_ = o.data_;
    size_ = o.size_;
    o.pager_ = nullptr;
    o.frame_ = nullptr;
    o.data_ = nullptr;
  }

  Pager* pager_ = nullptr;
  internal::PageFrame* frame_ = nullptr;  // null => transient (uncached)
  std::unique_ptr<uint8_t[]> transient_;
  PageId id_ = kInvalidPageId;
  uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

/// RAII allocation tracker for fault-atomic multi-page constructions
/// (DESIGN.md §6). While a scope is active, every page allocated through
/// the pager is recorded; unless Commit() is called, the destructor frees
/// whichever recorded pages are still live. Rollback never reads the
/// device (the ids are known), so it reclaims everything even while fault
/// injection is rejecting transfers — chain-walking cleanup cannot.
/// Scopes nest: committing an inner scope folds its pages into the
/// enclosing one, so a sub-build participates in its caller's atomicity.
class AllocationScope {
 public:
  explicit AllocationScope(Pager* pager);
  ~AllocationScope();
  AllocationScope(const AllocationScope&) = delete;
  AllocationScope& operator=(const AllocationScope&) = delete;

  /// Keeps the recorded pages (the build succeeded).
  void Commit();

 private:
  Pager* pager_;
  bool committed_ = false;
};

/// Buffer-pool front end for a BlockDevice. Pin-based access is the primary
/// interface; dirty pages are written back on eviction or Flush.
class Pager {
 public:
  /// Contents policy for PinMut on a page that may not be resident.
  enum class MutMode {
    /// Load current page contents (read-modify-write). Costs a device read
    /// on a pool miss / uncached pin.
    kLoad,
    /// Caller rewrites the whole page: the view starts zero-filled and no
    /// device read is ever issued. This is the historical Write() cost.
    kOverwrite,
  };

  /// `capacity_pages == 0` disables caching (every access hits the device).
  Pager(BlockDevice* device, uint32_t capacity_pages);

  ~Pager();

  uint32_t page_size() const { return device_->page_size(); }
  BlockDevice* device() { return device_; }

  /// Allocates a fresh zeroed page (cached as dirty; no device I/O yet when
  /// caching is enabled).
  PageId Allocate();

  /// Frees a page, discarding any cached copy. Freeing a pinned page is a
  /// checked error.
  Status Free(PageId id);

  /// Pins a page for reading. Zero-copy on cache hits; one device read on a
  /// miss (or always, when caching is disabled).
  Result<PageRef> Pin(PageId id);

  /// Pins a page for writing; the frame is marked dirty immediately.
  /// kOverwrite hands out a zero-filled view with no device read; asking to
  /// overwrite a page that currently has pins is a checked error (the zero
  /// fill would mutate the page under live views).
  Result<MutPageRef> PinMut(PageId id, MutMode mode = MutMode::kLoad);

  /// Allocates a fresh page and pins it for writing (zeroed, dirty).
  Result<MutPageRef> PinNew();

  /// Number of frames with at least one outstanding pin.
  uint64_t pinned_frames() const;

  /// Total outstanding pin handles (pool + transient).
  uint64_t outstanding_pins() const { return outstanding_pins_; }

  /// Copies the page into `out` (size page_size()). Thin wrapper over Pin,
  /// kept for fault-injection tests and callers that need an owned copy.
  Status Read(PageId id, std::span<uint8_t> out);

  /// Replaces the page contents from `in` (size page_size()). Thin wrapper
  /// over PinMut(kOverwrite).
  Status Write(PageId id, std::span<const uint8_t> in);

  /// Writes back all dirty pages (keeps them cached clean). Frames with an
  /// active mutable pin are written but stay dirty (the writer may still
  /// modify them).
  Status Flush();

  /// Writes back dirty pages and empties the pool. Establishes a cold cache
  /// for worst-case I/O measurement. Calling with outstanding pins is a
  /// checked error (FailedPrecondition): handles would dangle.
  Status DropCache();

  /// Device-level counters (the paper's I/O metric) plus pin/hit/miss
  /// counters.
  IoStats CombinedStats() const;

  /// Resets both pager-local and device counters.
  void ResetStats();

 private:
  friend class PageRef;
  friend class MutPageRef;
  friend class AllocationScope;

  using Frame = internal::PageFrame;

  // AllocationScope bookkeeping: Allocate/PinNew record into the active
  // scope; Free forgets the id wherever it is recorded.
  void RecordAllocation(PageId id);
  void ForgetAllocation(PageId id);

  // Returns the resident frame for `id`, loading it from the device unless
  // `mode == kOverwrite` (then the frame is zero-filled). Only called when
  // caching is enabled.
  Result<Frame*> GetFrame(PageId id, MutMode mode);

  // Evicts unpinned frames (LRU order, skipping pinned ones) until a slot
  // is free. ResourceExhausted when every frame is pinned.
  Status EvictIfFull();

  Status WriteBack(Frame& frame);

  // Builds a mutable handle over a private transient copy (uncached mode).
  Result<MutPageRef> TransientMutRef(PageId id, MutMode mode);
  // Builds a mutable handle over a resident frame, taking the pins.
  MutPageRef PoolMutRef(PageId id, Frame* frame);

  void UnpinShared(Frame* frame);
  void UnpinMut(Frame* frame);

  // Destructor fallback for an unreleased transient MutPageRef: best-effort
  // write-back whose failure is parked here and surfaced by the next
  // Flush()/DropCache().
  void RecordDeferredError(Status s);
  Status TakeDeferredError();

  BlockDevice* device_;
  uint32_t capacity_;
  // LRU list: front = most recent. Map from page id to list iterator.
  std::list<Frame> lru_;
  std::unordered_map<PageId, std::list<Frame>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t pin_requests_ = 0;
  uint64_t outstanding_pins_ = 0;
  Status deferred_error_;
  // Stack of active AllocationScopes (innermost last).
  std::vector<std::unordered_set<PageId>> alloc_scopes_;
};

}  // namespace ccidx

#endif  // CCIDX_IO_PAGER_H_
