// Pager: sharded write-back buffer pool over a BlockDevice, with zero-copy
// pinned-page access (DESIGN.md §3) and thread-safe read serving
// (DESIGN.md §7).
//
// The paper assumes at least O(B^2) units of main memory (§1.1); with pages
// of B units that is on the order of B resident pages. The pool capacity is
// configurable; benchmarks call DropCache() before each measured operation
// so device I/O counts reflect the worst case the theorems bound.
//
// Access model: callers pin pages and operate on spans into the buffer-pool
// frame itself (PostgreSQL-style page accessors), never on private copies.
//   * Pin(id)        -> PageRef     shared, read-only view
//   * PinMut(id)     -> MutPageRef  exclusive-intent, dirties the frame
//   * PinNew()       -> MutPageRef  allocate + pin a zeroed page
// A pinned frame is ineligible for eviction. When the whole pool is
// pinned, pinning anything else is ResourceExhausted (the historical
// contract); when only the page's home shard is pin-saturated, a read
// pin degrades to a private transient copy (one device read) instead of
// failing, so a pin set smaller than the pool can never be starved by
// hash skew. Write pins report ResourceExhausted per shard.
//
// Concurrency (DESIGN.md §7): the pool is partitioned into S shards by a
// hash of the page id, S = the smallest power of two >= 4x hardware
// threads (capped so every shard keeps a useful number of frames; tiny
// pools collapse to one shard and behave exactly like the historical
// single pool). Each shard owns its own mutex, page table, clock hand,
// and stats counters, so read pins on pages of distinct shards never
// serialize. Pin counts are atomics: releasing a pin takes no lock at
// all. Replacement is clock / second-chance: a warm hit sets one flag —
// no list splice, no allocation — and the sweep resumes from the hand
// position left by the previous eviction. Frame storage is one
// contiguous page-aligned arena sized at construction; frames never
// allocate per page.
//
//   Thread-safe against each other: Pin, PageRef::Release, and the
//     evictions / device reads they trigger — the read-serving hot path.
//   Thread-safe for DISTINCT pages (DESIGN.md §11): PinMut, PinNew,
//     Allocate, Free, Write, and AllocationScope (scope stacks are per
//     thread). N writer threads may build and mutate concurrently as
//     long as no two touch the same page at the same time — which is
//     what the families' internal write latches guarantee, and why
//     updates parallelize inside one exclusive epoch.
//   Externally synchronized (no concurrent pager calls at all): Flush,
//     DropCache — whole-pool maintenance entry points.
//
// When capacity_pages == 0 the pool is disabled and every pin is a private
// transient copy: Pin costs one device read, MutPageRef::Release() costs
// one device write. That reproduces the historical uncached Read/Write
// cost model exactly, which the fault-injection and I/O-count tests rely
// on. Transient copies are carved from a small recycled arena (heap
// fallback when it runs dry), so steady-state uncached pins do not
// allocate either. The copy-based Read/Write survive as thin wrappers
// over pins.

#ifndef CCIDX_IO_PAGER_H_
#define CCIDX_IO_PAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ccidx/common/status.h"
#include "ccidx/io/block_device.h"

namespace ccidx {

class Pager;
class Wal;

namespace internal {

/// One resident page of the buffer pool. `data` points at this frame's
/// fixed slot in the pager's arena. Frames with pins > 0 are
/// eviction-ineligible; mut_pins tracks the subset of pins that may write
/// (Flush must not clear the dirty bit under an active writer).
///
/// Locking: id / dirty / referenced are guarded by the owning shard's
/// lock. Pin counts are atomic — increments happen under the shard lock
/// (so the eviction sweep, which also holds it, can never race a new pin),
/// but decrements are lock-free releases.
struct PageFrame {
  PageId id = kInvalidPageId;  // kInvalidPageId => slot unoccupied
  bool dirty = false;
  bool referenced = false;  // clock second-chance bit
  std::atomic<uint32_t> pins{0};
  std::atomic<uint32_t> mut_pins{0};
  uint8_t* data = nullptr;
};

/// One buffer-pool shard: its own lock, page table, frames, clock hand,
/// and stats. The page table is open-addressed linear probing over frame
/// slots (table[i] is a frame index or -1), sized >= 2x capacity: a warm
/// hit costs one mixed-hash probe into a contiguous int32 array instead
/// of an unordered_map bucket chase. alignas keeps shards on distinct
/// cache lines so per-shard state never false-shares.
struct alignas(64) PagerShard {
  // Guards everything below. Shard critical sections are tens of ns (an
  // open-addressed probe plus flag writes; at worst one device transfer
  // on a miss), and shards outnumber hardware threads 4x, so this is
  // uncontended in the common case — and a futex mutex sleeps instead of
  // burning cores when it is not.
  std::mutex mu;
  std::unique_ptr<PageFrame[]> frames;
  std::vector<int32_t> table;  // open addressing; -1 = empty
  uint32_t table_mask = 0;
  std::vector<uint32_t> free_slots;
  uint32_t capacity = 0;
  uint32_t hand = 0;  // clock sweep position; persists across evictions
  // Per-shard stats, merged by Pager::CombinedStats() (guarded by mu).
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t pin_requests = 0;
};

}  // namespace internal

/// RAII shared read pin. While alive, the page's frame stays resident and
/// `data()` is a stable view into the buffer pool (no copy). Releasing a
/// read pin never performs I/O and never takes a lock.
class PageRef {
 public:
  PageRef() = default;
  PageRef(PageRef&& o) noexcept { MoveFrom(o); }
  PageRef& operator=(PageRef&& o) noexcept {
    if (this != &o) {
      Release();
      MoveFrom(o);
    }
    return *this;
  }
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  ~PageRef() { Release(); }

  bool valid() const { return pager_ != nullptr; }
  PageId id() const { return id_; }

  /// Read-only view of the whole page. Valid until Release()/destruction.
  std::span<const uint8_t> data() const {
    CCIDX_CHECK(valid());
    return {data_, size_};
  }

  /// Unpins early (idempotent). Never performs I/O.
  void Release();

 private:
  friend class Pager;

  void MoveFrom(PageRef& o) {
    pager_ = o.pager_;
    frame_ = o.frame_;
    transient_heap_ = std::move(o.transient_heap_);
    transient_slot_ = o.transient_slot_;
    id_ = o.id_;
    data_ = o.data_;
    size_ = o.size_;
    o.pager_ = nullptr;
    o.frame_ = nullptr;
    o.transient_slot_ = -1;
    o.data_ = nullptr;
  }

  Pager* pager_ = nullptr;
  internal::PageFrame* frame_ = nullptr;  // null => transient (uncached)
  std::unique_ptr<uint8_t[]> transient_heap_;  // arena-overflow fallback
  int32_t transient_slot_ = -1;  // >= 0: slot in the transient arena
  PageId id_ = kInvalidPageId;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

/// RAII mutable pin. Obtaining one marks the frame dirty; the write-back
/// happens on eviction or Flush (cached) or at Release() (uncached), always
/// on a Status-returning path. Prefer `return ref.Release();` over relying
/// on the destructor: a destructor write-back failure cannot be returned
/// and is parked as the pager's deferred error instead.
class MutPageRef {
 public:
  MutPageRef() = default;
  MutPageRef(MutPageRef&& o) noexcept { MoveFrom(o); }
  MutPageRef& operator=(MutPageRef&& o) noexcept;
  MutPageRef(const MutPageRef&) = delete;
  MutPageRef& operator=(const MutPageRef&) = delete;
  ~MutPageRef();

  bool valid() const { return pager_ != nullptr; }
  PageId id() const { return id_; }

  /// Writable view of the whole page. Valid until Release()/destruction.
  std::span<uint8_t> data() {
    CCIDX_CHECK(valid());
    return {data_, size_};
  }

  /// Unpins (idempotent). Uncached pins write the page back to the device
  /// here and surface the device Status; cached pins return OK (the dirty
  /// frame is flushed later by eviction or Flush).
  Status Release();

 private:
  friend class Pager;

  // Destructor/assignment path: releases, parking any write-back failure
  // as the pager's deferred error (a destructor cannot return Status).
  void ReleaseToDeferred();

  void MoveFrom(MutPageRef& o) {
    pager_ = o.pager_;
    frame_ = o.frame_;
    transient_heap_ = std::move(o.transient_heap_);
    transient_slot_ = o.transient_slot_;
    id_ = o.id_;
    data_ = o.data_;
    size_ = o.size_;
    o.pager_ = nullptr;
    o.frame_ = nullptr;
    o.transient_slot_ = -1;
    o.data_ = nullptr;
  }

  Pager* pager_ = nullptr;
  internal::PageFrame* frame_ = nullptr;  // null => transient (uncached)
  std::unique_ptr<uint8_t[]> transient_heap_;
  int32_t transient_slot_ = -1;
  PageId id_ = kInvalidPageId;
  uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

/// RAII allocation tracker for fault-atomic multi-page constructions
/// (DESIGN.md §6). While a scope is active, every page allocated through
/// the pager is recorded; unless Commit() is called, the destructor frees
/// whichever recorded pages are still live. Rollback never reads the
/// device (the ids are known), so it reclaims everything even while fault
/// injection is rejecting transfers — chain-walking cleanup cannot.
/// Scopes nest: committing an inner scope folds its pages into the
/// enclosing one, so a sub-build participates in its caller's atomicity.
/// Scope stacks are per thread (DESIGN.md §11): N writer threads each
/// run their own scoped builds concurrently without interleaving their
/// recorded allocations; a scope must be destroyed on the thread that
/// created it, and nesting composes within one thread only.
class AllocationScope {
 public:
  explicit AllocationScope(Pager* pager);
  ~AllocationScope();
  AllocationScope(const AllocationScope&) = delete;
  AllocationScope& operator=(const AllocationScope&) = delete;

  /// Keeps the recorded pages (the build succeeded).
  void Commit();

  /// Snapshot of the pages recorded by this scope so far (allocated under
  /// it and still live). The dynamization layer retains this as the page
  /// set of a structure built inside the scope, so the structure can later
  /// be freed without any device reads — the same property rollback
  /// relies on. Take the snapshot before Commit() (committing folds the
  /// set into the enclosing scope).
  std::vector<PageId> pages() const;

 private:
  Pager* pager_;
  std::thread::id tid_;  // creating thread: owns this scope's stack
  size_t depth_ = 0;  // index of this scope's set in its thread's stack
  bool committed_ = false;
};

/// One WAL transaction (DESIGN.md §13): while a scope is active on the
/// current thread, every mutable page touch through the pager logs the
/// page's before-image (first touch only), and every Allocate/Free logs an
/// allocation record. Commit() forces the transaction's touched pages to
/// the device, data-syncs it, and appends + group-syncs a commit record —
/// after which the transaction is crash-durable. A scope destroyed without
/// a successful Commit() simply leaves its records uncommitted: crash
/// recovery undoes them (in-process rollback stays AllocationScope's job —
/// the two compose, WalScope outermost).
///
/// Scopes nest per thread like AllocationScope: inner scopes fold into the
/// outermost transaction and only the outermost Commit() writes the commit
/// record. Inert (zero-cost beyond one null check) when no Wal is attached
/// to the pager, which is what keeps the WAL strictly opt-in.
///
/// Frees of pre-existing pages are logged with a before-image and the
/// device-level free is DEFERRED to the end of the outermost scope: an
/// uncommitted transaction's freed page must not be reallocated (and
/// overwritten) by a transaction that commits before it, or recovery could
/// not restore it. Deferred frees are applied on scope exit whether or not
/// the commit succeeded — families free pre-existing pages only past their
/// point of no return (the fault-atomicity contract the fault sweeps
/// enforce), so an aborted scope has no deferred frees to misapply.
class WalScope {
 public:
  explicit WalScope(Pager* pager);
  ~WalScope();
  WalScope(const WalScope&) = delete;
  WalScope& operator=(const WalScope&) = delete;

  /// Outermost scope: force + commit-record protocol (see class comment).
  /// Inner scope: no-op OK. Idempotent per scope.
  Status Commit();

 private:
  Pager* pager_;
  std::thread::id tid_;
  bool outermost_ = false;
  bool committed_ = false;
  bool active_ = false;  // false when no wal is attached (inert scope)
};

/// Buffer-pool front end for a BlockDevice. Pin-based access is the primary
/// interface; dirty pages are written back on eviction or Flush. See the
/// file comment for the shard layout and the thread-safety contract.
class Pager {
 public:
  /// Contents policy for PinMut on a page that may not be resident.
  enum class MutMode {
    /// Load current page contents (read-modify-write). Costs a device read
    /// on a pool miss / uncached pin.
    kLoad,
    /// Caller rewrites the whole page: the view starts zero-filled and no
    /// device read is ever issued. This is the historical Write() cost.
    kOverwrite,
  };

  /// `capacity_pages == 0` disables caching (every access hits the device).
  /// The frame arena (capacity_pages pages, page-aligned) is allocated
  /// here, up front — no per-frame allocation ever happens afterwards.
  Pager(BlockDevice* device, uint32_t capacity_pages);

  ~Pager();

  uint32_t page_size() const { return device_->page_size(); }
  BlockDevice* device() { return device_; }

  /// Number of shards the pool is split into (1 for small/uncached pools).
  uint32_t shard_count() const { return num_shards_; }

  /// Allocates a fresh zeroed page (cached as dirty; no device I/O yet when
  /// caching is enabled).
  PageId Allocate();

  /// Frees a page, discarding any cached copy. Freeing a pinned page is a
  /// checked error.
  Status Free(PageId id);

  /// Pins a page for reading. Zero-copy on cache hits; one device read on a
  /// miss (or always, when caching is disabled). Safe to call from any
  /// number of threads concurrently.
  Result<PageRef> Pin(PageId id);

  /// Pins a batch of pages for reading, issuing every pool miss as one
  /// concurrent device operation (BlockDevice::ReadBatch) instead of a
  /// serial miss-per-miss walk — under a latency-injecting or file-backed
  /// device the misses overlap and the batch costs one device round-trip.
  /// Counting semantics are serial-equivalent in every mode: the same
  /// hits, misses and device reads a loop of Pin(ids[i]) would produce
  /// (duplicate ids load once and hit thereafter; uncached pools read one
  /// copy per request, as uncached Pin does). Returned refs are in input
  /// order. On error (fault injection, pool exhaustion) nothing is pinned.
  Result<std::vector<PageRef>> PinMany(std::span<const PageId> ids);

  /// Speculative batch warm-up: loads `ids` resident-but-unpinned as one
  /// concurrent device batch, so an imminent Pin hits. Unlike Prefetch
  /// this is synchronous — when it returns, the pages are resident (or
  /// were dropped because their shard is pin-saturated; a warm is a hint
  /// and never fails). Strict no-op unless overlap pays (see
  /// speculation_budget()), which is what keeps counted I/Os in
  /// cost-model mode bit-identical: a zero-latency in-memory device never
  /// sees a speculative read.
  void WarmMany(std::span<const PageId> ids);

  /// Number of pages a dependent descent may speculatively fetch alongside
  /// the routed child (CCIDX_SPEC_BUDGET, default 4; the documented
  /// overshoot bound is <= this many unused pages per descent level).
  /// Zero whenever speculation is off: cost-model devices (in-memory with
  /// zero injected latency), uncached pools, or CCIDX_PREFETCH=0. Call
  /// sites gate their speculative/batched paths on this being nonzero, so
  /// cost-model I/O counts never change.
  uint32_t speculation_budget() const {
    return spec_budget_.load(std::memory_order_relaxed);
  }

  /// The budget the environment configured (CCIDX_SPEC_BUDGET, default 4;
  /// 0 when overlap is structurally off). set_speculation_budget restores
  /// to at most this.
  uint32_t base_speculation_budget() const { return base_spec_budget_; }

  /// Runtime throttle for the speculation budget (DESIGN.md §10/§12): an
  /// admission controller lowers it toward 0 under load so speculative
  /// I/O yields the device to demand I/O, and restores it when the
  /// backlog clears. Clamped to [0, base_speculation_budget()], so on a
  /// cost-model device (base 0) this can never turn speculation *on* —
  /// counted I/Os stay exact no matter who calls it. Thread-safe (one
  /// relaxed atomic store); descents racing with a change see either
  /// budget, both of which are correct.
  void set_speculation_budget(uint32_t budget) {
    if (budget > base_spec_budget_) budget = base_spec_budget_;
    spec_budget_.store(budget, std::memory_order_relaxed);
  }

  /// Best-effort asynchronous readahead hint (DESIGN.md §9): stages device
  /// reads of `ids` on a small background pool, so a subsequent Pin finds
  /// the page resident and the device latency overlaps the caller's
  /// per-page CPU work. Frames land unpinned-but-resident with the clock
  /// reference bit set — a hint can never block Free/DropCache and an
  /// unwanted page is simply evicted. Read errors are dropped (the real
  /// Pin re-reads and surfaces them). Ids already resident or already
  /// queued/in flight are skipped at enqueue time, so chained single-id
  /// hints on a warm pool cost one table probe instead of a queue round
  /// trip per call. Strict no-op when caching is disabled — the uncached
  /// cost model stays exact — or when CCIDX_PREFETCH=0. Thread-safe
  /// alongside Pin.
  void Prefetch(std::span<const PageId> ids);

  /// Blocks until every staged prefetch has been applied or dropped.
  /// DropCache and the destructor drain implicitly; tests use this to
  /// make residency deterministic.
  void DrainPrefetch();

  /// Pages staged through Prefetch since construction (diagnostics).
  uint64_t prefetches_issued() const {
    return prefetches_issued_.load(std::memory_order_relaxed);
  }

  /// Clock-hand prefetch feed diagnostics (DESIGN.md §11): warm hints
  /// that found their home shard pin-saturated and were parked instead
  /// of dropped, and parked hints re-staged when a pin release / Free /
  /// DropCache handed frames back — the path that keeps chained leaf
  /// runs pipelined under memory pressure.
  uint64_t prefetches_deferred() const {
    return prefetches_deferred_.load(std::memory_order_relaxed);
  }
  uint64_t prefetches_revived() const {
    return prefetches_revived_.load(std::memory_order_relaxed);
  }

  /// Pins a page for writing; the frame is marked dirty immediately.
  /// kOverwrite hands out a zero-filled view with no device read; asking to
  /// overwrite a page that currently has pins is a checked error (the zero
  /// fill would mutate the page under live views).
  Result<MutPageRef> PinMut(PageId id, MutMode mode = MutMode::kLoad);

  /// Allocates a fresh page and pins it for writing (zeroed, dirty).
  Result<MutPageRef> PinNew();

  /// Number of frames with at least one outstanding pin.
  uint64_t pinned_frames() const;

  /// Total outstanding pin handles (pool + transient).
  uint64_t outstanding_pins() const;

  /// Copies the page into `out` (size page_size()). Thin wrapper over Pin,
  /// kept for fault-injection tests and callers that need an owned copy.
  Status Read(PageId id, std::span<uint8_t> out);

  /// Replaces the page contents from `in` (size page_size()). Thin wrapper
  /// over PinMut(kOverwrite).
  Status Write(PageId id, std::span<const uint8_t> in);

  /// Writes back all dirty pages (keeps them cached clean). Frames with an
  /// active mutable pin are written but stay dirty (the writer may still
  /// modify them).
  Status Flush();

  /// Writes back dirty pages and empties the pool. Establishes a cold cache
  /// for worst-case I/O measurement. Calling with outstanding pins is a
  /// checked error (FailedPrecondition): handles would dangle.
  Status DropCache();

  // --- durability (DESIGN.md §13) ----------------------------------------

  /// Attaches a write-ahead log: from here on, WalScope transactions log
  /// before-images of every mutable page touch, and no data page reaches
  /// the device before the log records covering it are synced. If the log
  /// is empty, an initial checkpoint of the device's current allocation
  /// state is written (the recovery baseline — the log always starts with
  /// one). The wal must outlive the pager; `wal->device()` must be this
  /// pager's device. Not thread-safe against concurrent pager use: attach
  /// before going multi-threaded.
  void AttachWal(Wal* wal);

  /// The attached wal, or nullptr (the common, zero-overhead case).
  Wal* wal() const { return wal_; }

  /// Writes back the listed pages if resident and dirty (unknown / clean /
  /// absent ids are skipped). Unlike Flush this takes only the owning
  /// shards' locks per page, so a committing writer can force its own
  /// touched pages while other writers run — the families' latching
  /// contract guarantees nobody else is mutating *these* pages.
  Status FlushPages(std::span<const PageId> ids);

  /// Drops every frame WITHOUT writing anything back, discarding dirty
  /// state — crash recovery's "the pool was volatile" step. Outstanding
  /// pins are a checked error. Also clears any parked deferred error
  /// (pre-crash history).
  Status DiscardCache();

  /// Device-level counters (the paper's I/O metric) plus pin/hit/miss
  /// counters, merged across shards (DESIGN.md §7 stats merge rule).
  IoStats CombinedStats() const;

  /// Resets both pager-local (every shard) and device counters.
  void ResetStats();

 private:
  friend class PageRef;
  friend class MutPageRef;
  friend class AllocationScope;
  friend class WalScope;

  using Frame = internal::PageFrame;
  using Shard = internal::PagerShard;

  // Frames a transient (uncached) arena holds for recycling pin buffers.
  static constexpr uint32_t kTransientArenaFrames = 16;

  // Smallest power of two >= 4x hardware threads, capped so every shard
  // keeps >= kMinFramesPerShard frames (1 shard for tiny pools).
  static uint32_t PickShardCount(uint32_t capacity_pages);

  // AllocationScope bookkeeping: Allocate/PinNew record into the active
  // scope; Free forgets the id wherever it is recorded.
  void RecordAllocation(PageId id);
  void ForgetAllocation(PageId id);

  // Returns the resident frame for `id` within `shard` (whose lock the
  // caller holds), loading it from the device unless `mode == kOverwrite`
  // (then the frame is zero-filled). `hash` is the mixed page-id hash (the
  // same value that selected the shard); the open-addressed probe serves
  // both the hit check and the miss insert — one table walk per pin.
  Result<Frame*> GetFrameLocked(Shard& shard, PageId id, uint64_t hash,
                                MutMode mode);

  // Clock / second-chance sweep: returns a reclaimed frame slot, resuming
  // from the hand position of the previous sweep. ResourceExhausted when
  // every frame of the shard is pinned. Requires shard.mu.
  Result<uint32_t> EvictSlotLocked(Shard& shard);

  // True if any shard other than `except` has a free or unpinned frame.
  // Distinguishes "one shard is pin-saturated" (read pins degrade to a
  // transient copy) from "the whole pool is pinned" (ResourceExhausted,
  // the historical contract). Takes each shard's lock briefly; callers
  // hold no shard lock.
  bool AnyOtherShardHasCapacity(uint32_t except) const;

  // Open-addressed page-table helpers; all require shard.mu.
  // Probe for `id`: returns the table position holding it, or the first
  // empty position (insertion point) if absent.
  uint32_t ProbeLocked(const Shard& shard, PageId id, uint64_t hash) const;
  // Removes the table entry at position `pos` (backshift deletion keeps
  // probe chains tombstone-free).
  void TableEraseLocked(Shard& shard, uint32_t pos);

  Status WriteBack(Frame& frame);

  // Transient (uncached-mode) buffers: recycled arena slots with a heap
  // fallback. `heap` is set only when slot == -1.
  uint8_t* AcquireTransient(int32_t* slot,
                            std::unique_ptr<uint8_t[]>* heap);
  void ReleaseTransient(int32_t slot);

  // Builds a mutable handle over a private transient copy (uncached mode).
  Result<MutPageRef> TransientMutRef(PageId id, MutMode mode);
  // Builds a mutable handle over a resident frame, taking the pins.
  // Requires the shard lock.
  MutPageRef PoolMutRefLocked(PageId id, Frame* frame);

  // Destructor fallback for an unreleased transient MutPageRef: best-effort
  // write-back whose failure is parked here and surfaced by the next
  // Flush()/DropCache().
  void RecordDeferredError(Status s);
  Status TakeDeferredError();

  BlockDevice* device_;
  uint32_t capacity_;
  uint32_t num_shards_ = 1;
  uint32_t shard_mask_ = 0;
  // One contiguous page-aligned arena backing every frame (and, in
  // uncached mode, the transient buffer pool). Sized at construction.
  size_t frame_stride_ = 0;
  uint8_t* arena_ = nullptr;
  size_t arena_bytes_ = 0;
  std::unique_ptr<Shard[]> shards_;

  // Uncached-mode transient buffer recycling.
  std::mutex transient_mu_;
  std::vector<uint32_t> transient_free_;
  std::atomic<uint64_t> transient_outstanding_{0};
  std::atomic<uint64_t> transient_pin_requests_{0};

  // One pool miss in flight through BatchLoadResident: the page id, its
  // home shard, and the scratch buffer the device batch fills (no shard
  // lock is held across the device operation).
  struct MissEntry {
    PageId id;
    uint32_t shard_idx;
    uint64_t hash;
    std::unique_ptr<uint8_t[]> buf;
  };

  // Shared engine of PinMany / WarmMany / the prefetch workers. Three
  // phases: (A) probe + pin hits under shard locks, collecting distinct
  // misses; (B) one BlockDevice::ReadBatch into scratch buffers with no
  // locks held, so foreground pins never wait behind device latency;
  // (C) install under shard locks — re-probing first, because another
  // thread may have loaded the page meanwhile. `out == nullptr` is warm
  // mode: nothing is pinned, install failures are dropped (a warm is a
  // hint); otherwise refs land in input order and any failure unwinds
  // every pin taken so far.
  Status BatchLoadResident(std::span<const PageId> ids,
                           std::vector<PageRef>* out);

  // Ref constructors for BatchLoadResident (pins/counters already taken).
  PageRef PoolRef(PageId id, Frame* frame);
  PageRef TransientRefFromHeap(PageId id, std::unique_ptr<uint8_t[]> buf);

  // Readahead (DESIGN.md §9, §10): a bounded deduplicated FIFO of page ids
  // served by lazily started worker threads. Workers drain the queue in
  // batches through BatchLoadResident, performing the device reads with no
  // shard lock held (a 50 us injected latency must not block foreground
  // pins) and never taking a pin, so a prefetched frame is immediately
  // eviction-eligible and the pin accounting (outstanding_pins,
  // DropCache's precondition) is untouched. `prefetch_pending_` holds
  // every id queued or in flight: the enqueue side skips duplicates, and
  // a foreground Pin that misses on a pending id waits for the in-flight
  // load instead of issuing a second device read.
  void PrefetchWorker();
  // True if `id` is resident (then its reference bit is refreshed).
  // Best-effort: backs off to false when the shard lock is contended.
  bool TouchIfResident(PageId id);
  // Blocks until no prefetch of `id` is queued or in flight.
  void WaitPrefetchDone(PageId id);

  static constexpr size_t kPrefetchThreads = 2;
  static constexpr size_t kPrefetchQueueCap = 64;
  static constexpr size_t kPrefetchBatchMax = 16;

  std::mutex prefetch_mu_;
  std::condition_variable prefetch_cv_;       // workers: work available
  std::condition_variable prefetch_idle_cv_;  // drainers: queue quiesced
  std::condition_variable prefetch_done_cv_;  // pinners: a batch applied
  std::vector<std::thread> prefetch_threads_;
  std::deque<PageId> prefetch_queue_;
  std::unordered_set<PageId> prefetch_pending_;  // queued or in flight
  size_t prefetch_inflight_ = 0;
  bool prefetch_stop_ = false;
  bool prefetch_enabled_ = false;
  // Mirror of prefetch_pending_.size(): lets the Pin hot path skip the
  // pending check with one relaxed load when nothing is queued.
  std::atomic<uint64_t> prefetch_pending_count_{0};
  std::atomic<uint64_t> prefetches_issued_{0};

  // Clock-hand prefetch feed (DESIGN.md §11): a warm hint whose home
  // shard had no claimable frame (every slot pinned) parks here instead
  // of dropping. The moment capacity reappears the parked ids are
  // re-staged through Prefetch, so a scan-heavy batch's chained
  // leaf-run hints survive transient pin saturation. A pin release
  // dropping a frame to zero pins re-stages inline (lock-free hot path,
  // the relaxed-count fast path keeps it one load); Free instead
  // signals a prefetch worker, since its callers hold structure
  // latches that staging work must not run under.
  static constexpr size_t kDeferredPrefetchCap = 32;
  void DeferPrefetch(PageId id);
  void ReviveDeferredPrefetches();
  // Asks the readahead workers to run ReviveDeferredPrefetches on their
  // own thread: one short prefetch_mu_ hold and a notify, no staging
  // work — safe from inside a caller's latch-held critical section
  // (Free runs under structure install latches). No-op when no worker
  // is running; the parked hints then wait for the next pin-release
  // revive or Prefetch call.
  void RequestReviveAsync();
  bool revive_requested_ = false;  // guarded by prefetch_mu_
  std::mutex deferred_prefetch_mu_;
  std::vector<PageId> deferred_prefetch_;
  std::atomic<uint64_t> deferred_prefetch_count_{0};  // size mirror
  std::atomic<uint64_t> prefetches_deferred_{0};
  std::atomic<uint64_t> prefetches_revived_{0};
  // Speculation gate (DESIGN.md §10): batched warm-ups and speculative
  // descent fetches are enabled only when overlap pays — injected latency
  // or real kernel I/O — and the pool + prefetch machinery is on.
  bool overlap_enabled_ = false;
  // Current budget (runtime-throttleable) and the env-configured ceiling
  // it restores to. Atomic: the serve-layer admission controller stores
  // from its dispatcher thread while descents load on the workers.
  std::atomic<uint32_t> spec_budget_{0};
  uint32_t base_spec_budget_ = 0;

  std::mutex deferred_mu_;
  Status deferred_error_;
  // Per-thread stacks of active AllocationScopes (innermost last), keyed
  // by the creating thread so concurrent writers' scoped builds never
  // interleave their recorded allocations (DESIGN.md §11).
  std::mutex alloc_scopes_mu_;
  std::unordered_map<std::thread::id,
                     std::vector<std::unordered_set<PageId>>>
      alloc_scopes_;

  // --- WAL state (DESIGN.md §13) -----------------------------------------

  // One outermost WalScope transaction on one thread. Nested scopes only
  // bump `depth`. The entry is created by the outermost WalScope ctor and
  // erased by its dtor; unordered_map nodes are address-stable, so the
  // owning thread uses the pointer without holding wal_txns_mu_ (no other
  // thread ever touches another thread's entry).
  struct WalTxn {
    uint64_t id = 0;
    size_t depth = 1;
    Wal* wal = nullptr;  // wal at scope entry (attach is pre-threading)
    std::unordered_set<PageId> captured;   // before-image logged
    std::unordered_set<PageId> allocated;  // allocated within this txn
    std::vector<PageId> touched;           // to force at commit, in order
    std::vector<PageId> deferred_frees;    // device frees applied at exit
  };
  // The current thread's active transaction, or nullptr. Takes
  // wal_txns_mu_ only when a wal is attached.
  WalTxn* CurrentWalTxn();
  // First-touch hook from PinMut (before any shard lock — kOverwrite
  // zero-fills the frame, which would destroy the image): logs the page's
  // before-image once per txn. No-op outside a scope or for pages the txn
  // allocated itself.
  Status WalCaptureBeforeImage(PageId id);
  // Allocation hook from Allocate/PinNew: logs kAlloc, marks the page
  // txn-allocated (skips future capture) and touched (forced at commit).
  void WalOnAlloc(PageId id);

  Wal* wal_ = nullptr;
  std::mutex wal_txns_mu_;
  std::unordered_map<std::thread::id, WalTxn> wal_txns_;
};

/// Meta-only durability point (DESIGN.md §13): opens and immediately
/// commits a WAL txn, so the registered meta providers' blobs reflect an
/// acked resident-state change (buffer append, tombstone add) that wrote
/// no pages. Inert when no WAL is attached; folds into an enclosing scope
/// already open on this thread.
inline Status WalMetaCommit(Pager* pager) {
  WalScope ws(pager);
  return ws.Commit();
}

}  // namespace ccidx

#endif  // CCIDX_IO_PAGER_H_
