// Pager: write-back LRU buffer pool over a BlockDevice.
//
// The paper assumes at least O(B^2) units of main memory (§1.1); with pages
// of B units that is on the order of B resident pages. The pool capacity is
// configurable; benchmarks call DropCache() before each measured operation
// so device I/O counts reflect the worst case the theorems bound.

#ifndef CCIDX_IO_PAGER_H_
#define CCIDX_IO_PAGER_H_

#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "ccidx/common/status.h"
#include "ccidx/io/block_device.h"

namespace ccidx {

/// Buffer-pool front end for a BlockDevice. Read/Write operate on whole
/// pages by copy; dirty pages are written back on eviction or Flush.
class Pager {
 public:
  /// `capacity_pages == 0` disables caching (every access hits the device).
  Pager(BlockDevice* device, uint32_t capacity_pages);

  ~Pager();

  uint32_t page_size() const { return device_->page_size(); }
  BlockDevice* device() { return device_; }

  /// Allocates a fresh zeroed page (cached as dirty; no device I/O yet when
  /// caching is enabled).
  PageId Allocate();

  /// Frees a page, discarding any cached copy.
  Status Free(PageId id);

  /// Copies the page into `out` (size page_size()).
  Status Read(PageId id, std::span<uint8_t> out);

  /// Replaces the page contents from `in` (size page_size()).
  Status Write(PageId id, std::span<const uint8_t> in);

  /// Writes back all dirty pages (keeps them cached clean).
  Status Flush();

  /// Writes back dirty pages and empties the pool. Establishes a cold cache
  /// for worst-case I/O measurement.
  Status DropCache();

  /// Device-level counters (the paper's I/O metric) plus hit/miss counters.
  IoStats CombinedStats() const;

  /// Resets both pager-local and device counters.
  void ResetStats();

 private:
  struct Frame {
    PageId id;
    bool dirty;
    std::unique_ptr<uint8_t[]> data;
  };

  // Returns the frame for `id`, loading it from the device if needed.
  // Returns nullptr via status on I/O error. Only called when caching is on.
  Result<Frame*> GetFrame(PageId id, bool load_from_device);

  Status EvictIfFull();
  Status WriteBack(Frame& frame);

  BlockDevice* device_;
  uint32_t capacity_;
  // LRU list: front = most recent. Map from page id to list iterator.
  std::list<Frame> lru_;
  std::unordered_map<PageId, std::list<Frame>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace ccidx

#endif  // CCIDX_IO_PAGER_H_
