#include "ccidx/pst/external_pst.h"

#include <algorithm>

#include "ccidx/dynamic/purge_rebuild.h"
#include "ccidx/io/wal.h"
#include "ccidx/simd/filter_emit.h"

namespace ccidx {

namespace {
bool DescY(const Point& a, const Point& b) { return PointYOrder()(b, a); }
constexpr auto kRlx = std::memory_order_relaxed;
}  // namespace

uint32_t ExternalPst::NodeCapacity() const {
  return static_cast<uint32_t>(
      (pager_->page_size() - sizeof(NodeHeader)) / sizeof(Point));
}

Result<PageId> ExternalPst::BuildNode(Pager* pager, PointGroup group,
                                      uint32_t cap) {
  if (group.empty()) return kInvalidPageId;

  // The node keeps the `cap` highest-y points of its range; the rest split
  // into two x-halves.
  NodeHeader h{};
  h.sub_xlo = group.first_x();
  h.sub_xhi = group.last_x();
  h.left = kInvalidPageId;
  h.right = kInvalidPageId;

  std::vector<Point> own;
  if (group.size() <= cap) {
    auto all = std::move(group).TakeAll();
    CCIDX_RETURN_IF_ERROR(all.status());
    own = std::move(*all);
  } else {
    auto part = std::move(group).PartitionTopY(cap, 2);
    CCIDX_RETURN_IF_ERROR(part.status());
    own = std::move(part->top);
    // A one-element rest yields a single child: the right half (the even
    // split gives the left child floor(rest/2) = 0 points).
    PointGroup* left_group =
        part->children.size() > 1 ? &part->children[0] : nullptr;
    PointGroup* right_group =
        part->children.size() > 1 ? &part->children[1] : &part->children[0];
    if (left_group != nullptr) {
      auto left = BuildNode(pager, std::move(*left_group), cap);
      CCIDX_RETURN_IF_ERROR(left.status());
      h.left = *left;
    }
    auto right = BuildNode(pager, std::move(*right_group), cap);
    CCIDX_RETURN_IF_ERROR(right.status());
    h.right = *right;
  }
  std::sort(own.begin(), own.end(), DescY);
  h.count = static_cast<uint32_t>(own.size());
  h.min_y = own.empty() ? kCoordMax : own.back().y;

  auto ref = pager->PinNew();
  CCIDX_RETURN_IF_ERROR(ref.status());
  PageId id = ref->id();
  PageWriter w(ref->data());
  w.Put(h);
  w.PutArray(std::span<const Point>(own));
  CCIDX_RETURN_IF_ERROR(ref->Release());
  return id;
}

Result<ExternalPst> ExternalPst::Build(Pager* pager, PointGroup points) {
  ExternalPst tree(pager, kInvalidPageId);
  uint32_t cap = tree.NodeCapacity();
  if (cap < 1) {
    return Status::InvalidArgument("page size too small for external PST");
  }
  AllocationScope scope(pager);
  uint64_t n = points.size();
  auto root = BuildNode(pager, std::move(points), cap);
  CCIDX_RETURN_IF_ERROR(root.status());
  tree.root_ = *root;
  tree.sy_->size.store(n, kRlx);
  scope.Commit();
  return tree;
}

Result<ExternalPst> ExternalPst::Build(Pager* pager,
                                       RecordStream<Point>* points) {
  AllocationScope scope(pager);
  auto group =
      SortPointStream(pager, points, /*require_above_diagonal=*/false);
  CCIDX_RETURN_IF_ERROR(group.status());
  auto tree = Build(pager, std::move(*group));
  CCIDX_RETURN_IF_ERROR(tree.status());
  scope.Commit();
  return tree;
}

Result<ExternalPst> ExternalPst::Build(Pager* pager,
                                       std::span<const Point> points) {
  return Build(pager, std::vector<Point>(points.begin(), points.end()));
}

Result<ExternalPst> ExternalPst::Build(Pager* pager,
                                       std::vector<Point>&& points) {
  std::sort(points.begin(), points.end(), PointXOrder());
  return Build(pager, PointGroup::FromVector(std::move(points)));
}

ExternalPst ExternalPst::Open(Pager* pager, PageId root) {
  return ExternalPst(pager, root);
}

Status ExternalPst::StoreNode(PageId id, NodeHeader& h,
                              const std::vector<Point>& pts) const {
  h.count = static_cast<uint32_t>(pts.size());
  h.min_y = pts.empty() ? kCoordMax : pts.back().y;
  auto ref = pager_->PinMut(id, Pager::MutMode::kOverwrite);
  CCIDX_RETURN_IF_ERROR(ref.status());
  PageWriter w(ref->data());
  w.Put(h);
  w.PutArray(std::span<const Point>(pts));
  return ref->Release();
}

uint32_t ExternalPst::MaxDepth() const {
  uint32_t depth = 2;
  uint64_t nodes = size() / std::max<uint32_t>(1, NodeCapacity()) + 2;
  while (nodes > 1) {
    nodes >>= 1;
    depth += 2;  // 2x the perfectly balanced height + slack
  }
  return depth + 6;
}

Status ExternalPst::LoadImageLocked() {
  if (sy_->image_loaded) return Status::OK();
  CCIDX_RETURN_IF_ERROR(LoadNode(root_, &sy_->root_h, &sy_->root_pts));
  sy_->image_loaded = true;
  return Status::OK();
}

Status ExternalPst::StoreRootLocked() {
  return StoreNode(root_, sy_->root_h, sy_->root_pts);
}

void ExternalPst::RefreshRootMetaLocked() {
  sy_->root_h.count = static_cast<uint32_t>(sy_->root_pts.size());
  sy_->root_h.min_y =
      sy_->root_pts.empty() ? kCoordMax : sy_->root_pts.back().y;
}

Status ExternalPst::CreateRootLocked(const Point& p) {
  AllocationScope scope(pager_);
  NodeHeader h{};
  h.left = kInvalidPageId;
  h.right = kInvalidPageId;
  h.sub_xlo = h.sub_xhi = p.x;
  PageId id = pager_->Allocate();
  std::vector<Point> pts = {p};
  CCIDX_RETURN_IF_ERROR(StoreNode(id, h, pts));
  scope.Commit();
  root_ = id;
  sy_->root_h = h;  // StoreNode filled count/min_y
  sy_->root_pts = std::move(pts);
  sy_->image_loaded = true;
  sy_->size.fetch_add(1, kRlx);
  sched_.NoteInsert();
  return Status::OK();
}

bool ExternalPst::TryAbsorbRootLocked(const Point& p, uint32_t cap,
                                      Status* st) {
  std::vector<Point>& pts = sy_->root_pts;
  const bool is_leaf = sy_->root_h.left == kInvalidPageId &&
                       sy_->root_h.right == kInvalidPageId;
  // An internal root may only absorb a point at or above its current
  // minimum (descendants sit at or below it; a lower point staying here
  // would break the heap prune).
  const Coord min_y = pts.empty() ? kCoordMax : pts.back().y;
  if (!(pts.size() < cap && (is_leaf || p.y >= min_y))) return false;
  const Coord oxlo = sy_->root_h.sub_xlo;
  const Coord oxhi = sy_->root_h.sub_xhi;
  sy_->root_h.sub_xlo = std::min(oxlo, p.x);
  sy_->root_h.sub_xhi = std::max(oxhi, p.x);
  auto pos = std::lower_bound(pts.begin(), pts.end(), p, DescY);
  pos = pts.insert(pos, p);
  *st = StoreRootLocked();
  if (!st->ok()) {
    // The failed device write left the old page, so restoring the image
    // restores image == disk.
    pts.erase(pos);
    sy_->root_h.sub_xlo = oxlo;
    sy_->root_h.sub_xhi = oxhi;
    RefreshRootMetaLocked();
  }
  return true;
}

Result<int> ExternalPst::ChooseSideLocked(const Point& p) const {
  // Peeks are taken under the children's node stripes: a concurrent
  // delete on either side may be rewriting the peeked page in place.
  const NodeHeader& h = sy_->root_h;
  if (h.left == kInvalidPageId && h.right == kInvalidPageId) return 0;
  NodeHeader lh{}, rh{};
  std::vector<Point> tmp;
  if (h.left != kInvalidPageId) {
    std::lock_guard<std::mutex> g(sy_->stripes[h.left % kStripes]);
    CCIDX_RETURN_IF_ERROR(LoadNode(h.left, &lh, &tmp));
  }
  if (h.right != kInvalidPageId) {
    std::lock_guard<std::mutex> g(sy_->stripes[h.right % kStripes]);
    CCIDX_RETURN_IF_ERROR(LoadNode(h.right, &rh, &tmp));
  }
  if (h.left == kInvalidPageId) return p.x < rh.sub_xlo ? 0 : 1;
  if (h.right == kInvalidPageId) return p.x > lh.sub_xhi ? 1 : 0;
  if (p.x <= lh.sub_xhi) return 0;
  if (p.x >= rh.sub_xlo) return 1;
  // No subtree weights here: widen the NARROWER subtree, a cheap proxy
  // for filling the lighter side. Unsigned arithmetic — the spans are
  // non-negative but may exceed the signed Coord range.
  uint64_t lw =
      static_cast<uint64_t>(lh.sub_xhi) - static_cast<uint64_t>(lh.sub_xlo);
  uint64_t rw =
      static_cast<uint64_t>(rh.sub_xhi) - static_cast<uint64_t>(rh.sub_xlo);
  return lw <= rw ? 0 : 1;
}

void ExternalPst::UndoRootDisplaceLocked(const Point& p, const Point& carried,
                                         bool displaced) {
  if (!displaced) return;
  std::vector<Point>& pts = sy_->root_pts;
  // Relative undo (remove p, restore the displaced minimum) rather than a
  // snapshot: concurrent root absorbs may have added points since.
  for (auto it = pts.begin(); it != pts.end(); ++it) {
    if (*it == p) {
      pts.erase(it);
      break;
    }
  }
  auto pos = std::lower_bound(pts.begin(), pts.end(), carried, DescY);
  pts.insert(pos, carried);
  // Best-effort disk repair: sequentially the root was never rewritten
  // since the displacement (nothing to repair, and under fault injection
  // this write fails too, leaving the old page); concurrently a root
  // absorb may have persisted the in-flight displacement, and this
  // rewrite restores the displaced minimum on disk.
  (void)StoreRootLocked();
  RefreshRootMetaLocked();
}

Status ExternalPst::BuildShadowSubtree(PageId start, Point carried,
                                       uint32_t cap, PageId* top,
                                       size_t* depth,
                                       std::vector<PageId>* shadow,
                                       std::vector<PageId>* old_path) {
  // Phase 1 — plan the insertion read-only: descend the x-routing path,
  // deciding per node whether the carried point is absorbed, displaces
  // the node minimum, or routes onward. Nothing is written, so a device
  // failure here changes nothing. The side latch (held exclusive by the
  // caller) excludes every other writer from this subtree's pages.
  struct PlanEntry {
    PageId old_id;
    NodeHeader h;
    std::vector<Point> pts;
    int side = -1;  // side routed onward (0 = L, 1 = R), -1 = none
  };
  std::vector<PlanEntry> plan;
  bool create_leaf = false;
  if (start == kInvalidPageId) {
    create_leaf = true;
  } else {
    PageId id = start;
    // The routing peek at a child is reused as the next level's node, so
    // the descent costs ~2 page reads per level, not 3.
    bool have_next = false;
    NodeHeader next_h{};
    std::vector<Point> next_pts;
    while (true) {
      PlanEntry e;
      if (have_next) {
        e.h = next_h;
        e.pts = std::move(next_pts);
        have_next = false;
      } else {
        CCIDX_RETURN_IF_ERROR(LoadNode(id, &e.h, &e.pts));
      }
      e.old_id = id;
      e.h.sub_xlo = std::min(e.h.sub_xlo, carried.x);
      e.h.sub_xhi = std::max(e.h.sub_xhi, carried.x);

      const bool is_leaf =
          e.h.left == kInvalidPageId && e.h.right == kInvalidPageId;
      const Coord old_min = e.h.min_y;
      // An internal node may only absorb a point at or above its current
      // minimum (descendants sit at or below it; a lower point staying
      // here would break the heap prune).
      if (e.pts.size() < cap && (is_leaf || carried.y >= old_min)) {
        auto pos =
            std::lower_bound(e.pts.begin(), e.pts.end(), carried, DescY);
        e.pts.insert(pos, carried);
        plan.push_back(std::move(e));
        break;
      }
      if (carried.y > old_min) {  // displace the minimum downward
        auto pos =
            std::lower_bound(e.pts.begin(), e.pts.end(), carried, DescY);
        e.pts.insert(pos, carried);
        carried = e.pts.back();
        e.pts.pop_back();
      }
      // Route the carried point by x, creating a leaf below if needed.
      int side;
      NodeHeader lh, rh;
      std::vector<Point> lpts, rpts;
      if (e.h.left == kInvalidPageId && e.h.right == kInvalidPageId) {
        side = 0;
      } else if (e.h.left == kInvalidPageId) {
        CCIDX_RETURN_IF_ERROR(LoadNode(e.h.right, &rh, &rpts));
        side = carried.x < rh.sub_xlo ? 0 : 1;
      } else if (e.h.right == kInvalidPageId) {
        CCIDX_RETURN_IF_ERROR(LoadNode(e.h.left, &lh, &lpts));
        side = carried.x > lh.sub_xhi ? 1 : 0;
      } else {
        CCIDX_RETURN_IF_ERROR(LoadNode(e.h.left, &lh, &lpts));
        CCIDX_RETURN_IF_ERROR(LoadNode(e.h.right, &rh, &rpts));
        if (carried.x <= lh.sub_xhi) {
          side = 0;
        } else if (carried.x >= rh.sub_xlo) {
          side = 1;
        } else {
          // Widen the narrower subtree (see ChooseSideLocked).
          uint64_t lw = static_cast<uint64_t>(lh.sub_xhi) -
                        static_cast<uint64_t>(lh.sub_xlo);
          uint64_t rw = static_cast<uint64_t>(rh.sub_xhi) -
                        static_cast<uint64_t>(rh.sub_xlo);
          side = lw <= rw ? 0 : 1;
        }
      }
      e.side = side;
      PageId child = side == 0 ? e.h.left : e.h.right;
      plan.push_back(std::move(e));
      if (child == kInvalidPageId) {
        create_leaf = true;
        break;
      }
      // A valid routed child was always peeked above — reuse the load.
      if (side == 0) {
        next_h = lh;
        next_pts = std::move(lpts);
      } else {
        next_h = rh;
        next_pts = std::move(rpts);
      }
      have_next = true;
      id = child;
    }
  }

  // Phase 2 — shadow the path: every planned node is written as a fresh
  // page (bottom-up, children wired to the replacements) under an
  // AllocationScope. A failure rolls the new pages back and leaves the
  // old subtree — still reachable from the root — untouched.
  AllocationScope scope(pager_);
  PageId below = kInvalidPageId;
  if (create_leaf) {
    NodeHeader nh{};
    nh.left = kInvalidPageId;
    nh.right = kInvalidPageId;
    nh.sub_xlo = nh.sub_xhi = carried.x;
    below = pager_->Allocate();
    std::vector<Point> npts = {carried};
    CCIDX_RETURN_IF_ERROR(StoreNode(below, nh, npts));
  }
  for (size_t i = plan.size(); i-- > 0;) {
    PlanEntry& e = plan[i];
    if (e.side == 0) {
      e.h.left = below;
    } else if (e.side == 1) {
      e.h.right = below;
    }
    PageId nid = pager_->Allocate();
    CCIDX_RETURN_IF_ERROR(StoreNode(nid, e.h, e.pts));
    below = nid;
  }
  *shadow = scope.pages();
  scope.Commit();
  old_path->reserve(plan.size());
  for (const PlanEntry& e : plan) old_path->push_back(e.old_id);
  *top = below;
  *depth = plan.size() + (create_leaf ? 1u : 0u);
  return Status::OK();
}

Status ExternalPst::Insert(const Point& p) {
  const uint32_t cap = NodeCapacity();
  size_t depth = 0;
  while (true) {
    // One WAL txn per attempt: every commit below runs while the latch
    // that ordered the write is still held, so no concurrent writer can
    // capture uncommitted content as its own before-image. A retry
    // abandons a zero-record scope (free — nothing was logged).
    WalScope ws(pager_);
    // Advisory root step: resolve entirely at the root when possible
    // (create / absorb are real — they only need root_mu); otherwise
    // pick the side latch to take.
    int side;
    {
      std::unique_lock<std::mutex> rg(sy_->root_mu);
      if (root_ == kInvalidPageId) {
        CCIDX_RETURN_IF_ERROR(CreateRootLocked(p));
        return ws.Commit();
      }
      CCIDX_RETURN_IF_ERROR(LoadImageLocked());
      Status st;
      if (TryAbsorbRootLocked(p, cap, &st)) {
        if (st.ok()) {
          sy_->size.fetch_add(1, kRlx);
          sched_.NoteInsert();
          st = ws.Commit();
        }
        return st;
      }
      auto s = ChooseSideLocked(p);
      CCIDX_RETURN_IF_ERROR(s.status());
      side = *s;
    }

    // Redo the root step under the side latch: a concurrent insert,
    // delete or rebuild may have changed the picture (absorb became
    // possible, the routing flipped sides, the tree was rebuilt).
    std::unique_lock<std::shared_mutex> sl(sy_->side[side]);
    bool retry = false;
    bool displaced = false;
    Point carried = p;
    PageId oc = kInvalidPageId;
    {
      std::unique_lock<std::mutex> rg(sy_->root_mu);
      if (root_ == kInvalidPageId) {
        retry = true;  // rebuilt away to empty — restart at create
      } else {
        CCIDX_RETURN_IF_ERROR(LoadImageLocked());
        Status st;
        if (TryAbsorbRootLocked(p, cap, &st)) {
          if (st.ok()) {
            sy_->size.fetch_add(1, kRlx);
            sched_.NoteInsert();
            st = ws.Commit();
          }
          return st;
        }
        auto s2 = ChooseSideLocked(p);
        CCIDX_RETURN_IF_ERROR(s2.status());
        if (*s2 != side) {
          retry = true;  // wrong latch in hand
        } else {
          const Coord old_min =
              sy_->root_pts.empty() ? kCoordMax : sy_->root_pts.back().y;
          if (p.y > old_min) {  // displace the root minimum downward
            std::vector<Point>& pts = sy_->root_pts;
            auto pos = std::lower_bound(pts.begin(), pts.end(), p, DescY);
            pts.insert(pos, p);
            carried = pts.back();
            pts.pop_back();
            displaced = true;
          }
          // Widen the root range in the image; the disk root follows at
          // commit (widening is conservative, so it is left in place on
          // failure).
          sy_->root_h.sub_xlo = std::min(sy_->root_h.sub_xlo, p.x);
          sy_->root_h.sub_xhi = std::max(sy_->root_h.sub_xhi, p.x);
          oc = side == 0 ? sy_->root_h.left : sy_->root_h.right;
        }
      }
    }
    if (retry) continue;

    // Build the shadow subtree with root_mu released: the long part of
    // the insert runs concurrently with root absorbs and with writers on
    // the other side.
    PageId top = kInvalidPageId;
    std::vector<PageId> shadow, old_path;
    Status bst =
        BuildShadowSubtree(oc, carried, cap, &top, &depth, &shadow, &old_path);

    {
      std::unique_lock<std::mutex> rg(sy_->root_mu);
      if (!bst.ok()) {
        UndoRootDisplaceLocked(p, carried, displaced);
        return bst;
      }
      // Commit: swing the root's child pointer to the shadow subtree.
      uint64_t& slot = side == 0 ? sy_->root_h.left : sy_->root_h.right;
      const uint64_t prev = slot;
      slot = top;
      Status cs = StoreRootLocked();
      if (!cs.ok()) {
        slot = prev;
        UndoRootDisplaceLocked(p, carried, displaced);
        for (PageId nid : shadow) (void)pager_->Free(nid);
        return cs;
      }
      // Point of no return: retire the old path by id (no device reads).
      // Done under root_mu so a concurrent ChooseSideLocked peek never
      // reads a freed page (under WAL the device free is deferred to
      // scope exit, which only delays reclamation — the root pointers no
      // longer reference the old path by then).
      for (PageId oid : old_path) (void)pager_->Free(oid);
      sy_->size.fetch_add(1, kRlx);
      sched_.NoteInsert();
      CCIDX_RETURN_IF_ERROR(ws.Commit());
    }
    sl.unlock();
    // Fall out of the scope's lifetime before any rebuild: TriggerRebuild
    // opens its own WAL txn and must not nest inside a committed one.
    break;
  }
  if (depth + 1 > MaxDepth() || sched_.ShouldRebuild(size())) {
    return TriggerRebuild(/*force=*/depth + 1 > MaxDepth());
  }
  return Status::OK();
}

Status ExternalPst::DeleteNode(PageId id, const Point& p, bool* found) {
  if (id == kInvalidPageId) {
    *found = false;
    return Status::OK();
  }
  NodeHeader h;
  std::vector<Point> pts;
  PageId l, r;
  {
    // One node stripe at a time: held across this node's read-modify-
    // write, released before recursing.
    std::lock_guard<std::mutex> g(sy_->stripes[id % kStripes]);
    CCIDX_RETURN_IF_ERROR(LoadNode(id, &h, &pts));
    if (p.x < h.sub_xlo || p.x > h.sub_xhi) {
      *found = false;
      return Status::OK();
    }
    for (size_t i = 0; i < pts.size(); ++i) {
      if (pts[i] == p) {
        pts.erase(pts.begin() + i);
        *found = true;
        // The single in-place write of the whole operation: atomic under
        // fault injection (a failed device write leaves the old page).
        // The WAL txn opens here — at the only page write of the whole
        // descent — and commits under this node's stripe latch, before
        // any other writer can touch the page.
        WalScope ws(pager_);
        CCIDX_RETURN_IF_ERROR(StoreNode(id, h, pts));
        return ws.Commit();
      }
    }
    // Heap order: every descendant lies at or below this node's minimum.
    if (!pts.empty() && p.y > h.min_y) {
      *found = false;
      return Status::OK();
    }
    l = h.left;
    r = h.right;
  }
  CCIDX_RETURN_IF_ERROR(DeleteNode(l, p, found));
  if (!*found) {
    CCIDX_RETURN_IF_ERROR(DeleteNode(r, p, found));
  }
  return Status::OK();
}

Status ExternalPst::Delete(const Point& p, bool* found) {
  *found = false;
  while (true) {
    // Root step under root_mu: exact match, x-range and heap prunes all
    // answer from the image.
    PageId root_seen;
    {
      std::unique_lock<std::mutex> rg(sy_->root_mu);
      if (root_ == kInvalidPageId) return Status::OK();
      CCIDX_RETURN_IF_ERROR(LoadImageLocked());
      if (p.x < sy_->root_h.sub_xlo || p.x > sy_->root_h.sub_xhi) {
        return Status::OK();
      }
      std::vector<Point>& pts = sy_->root_pts;
      for (size_t i = 0; i < pts.size(); ++i) {
        if (pts[i] == p) {
          // Root-resident hit: one page write, committed under root_mu.
          // A failed commit takes the same in-memory undo as a failed
          // store — the dtor abort restores the disk image to match.
          WalScope ws(pager_);
          pts.erase(pts.begin() + i);
          Status st = StoreRootLocked();
          if (st.ok()) st = ws.Commit();
          if (!st.ok()) {
            auto pos = std::lower_bound(pts.begin(), pts.end(), p, DescY);
            pts.insert(pos, p);
            RefreshRootMetaLocked();
            return st;
          }
          *found = true;
          break;
        }
      }
      if (!*found) {
        const Coord min_y = pts.empty() ? kCoordMax : pts.back().y;
        if (!pts.empty() && p.y > min_y) return Status::OK();  // heap prune
      }
      root_seen = root_;
    }

    if (!*found) {
      bool restart = false;
      for (int s = 0; s < 2 && !*found; ++s) {
        std::shared_lock<std::shared_mutex> sl(sy_->side[s]);
        PageId child;
        {
          // Re-read the child pointer under root_mu now that the side
          // latch pins it: a commit or rebuild may have swung it between
          // the root step and the latch acquisition.
          std::unique_lock<std::mutex> rg(sy_->root_mu);
          if (root_ != root_seen) {
            restart = true;  // rebuilt under us — points may have moved
            break;
          }
          child = s == 0 ? sy_->root_h.left : sy_->root_h.right;
        }
        if (child == kInvalidPageId) continue;
        CCIDX_RETURN_IF_ERROR(DeleteNode(child, p, found));
      }
      if (restart) continue;
    }
    break;
  }
  if (!*found) return Status::OK();
  sy_->size.fetch_sub(1, kRlx);
  sched_.NoteDelete();
  if (sched_.ShouldRebuild(size())) return TriggerRebuild(/*force=*/false);
  return Status::OK();
}

Status ExternalPst::Harvest(std::vector<Point>* pts,
                            std::vector<PageId>* pages) const {
  std::vector<PageId> stack;
  if (root_ != kInvalidPageId) stack.push_back(root_);
  NodeHeader h;
  std::vector<Point> own;
  while (!stack.empty()) {
    PageId id = stack.back();
    stack.pop_back();
    CCIDX_RETURN_IF_ERROR(LoadNode(id, &h, &own));
    if (pts != nullptr) pts->insert(pts->end(), own.begin(), own.end());
    if (pages != nullptr) pages->push_back(id);
    if (h.left != kInvalidPageId) stack.push_back(h.left);
    if (h.right != kInvalidPageId) stack.push_back(h.right);
  }
  return Status::OK();
}

Status ExternalPst::VisitPages(std::vector<PageId>* out) const {
  return Harvest(nullptr, out);
}

Status ExternalPst::TriggerRebuild(bool force) {
  if (rebuild_hook_) {
    // Divert to the maintenance path; at most one pending rebuild at a
    // time (the latch is released on commit/abandon).
    if (!sy_->rebuild_pending.exchange(true, kRlx)) rebuild_hook_();
    return Status::OK();
  }
  return force ? GlobalRebuild() : [&] {
    std::unique_lock<std::shared_mutex> l0(sy_->side[0]);
    std::unique_lock<std::shared_mutex> l1(sy_->side[1]);
    std::unique_lock<std::mutex> rg(sy_->root_mu);
    // Writers that queued behind the same trigger collapse to one
    // rebuild: the first Reset()s the scheduler.
    if (!sched_.ShouldRebuild(sy_->size.load(kRlx))) return Status::OK();
    return GlobalRebuildLocked();
  }();
}

Status ExternalPst::GlobalRebuild() {
  std::unique_lock<std::shared_mutex> l0(sy_->side[0]);
  std::unique_lock<std::shared_mutex> l1(sy_->side[1]);
  std::unique_lock<std::mutex> rg(sy_->root_mu);
  return GlobalRebuildLocked();
}

Status ExternalPst::GlobalRebuildLocked() {
  // Shared fault-atomic skeleton (dynamic/purge_rebuild.h). The PST
  // deletes records eagerly (no tombstone set), so every harvested point
  // is live; the skeleton still supplies the harvest / scoped-build /
  // retire-by-id sequencing. All latches are held, so the disk tree is
  // current (no displacement in flight) and no writer can interleave.
  // One WAL txn spans harvest, build, and retire: a crash mid-rebuild
  // rolls the whole replacement back to the pre-rebuild tree.
  WalScope ws(pager_);
  PageId new_root = kInvalidPageId;
  CCIDX_RETURN_IF_ERROR(PurgeRebuild(
      pager_, static_cast<PointTombstones*>(nullptr), &sched_,
      [&](std::vector<Point>* out) { return Harvest(out, nullptr); },
      [&](std::vector<PageId>* out) { return VisitPages(out); },
      [&](std::vector<Point> live) {
        std::sort(live.begin(), live.end(), PointXOrder());
        auto fresh = BuildNode(pager_, PointGroup::FromVector(std::move(live)),
                               NodeCapacity());
        CCIDX_RETURN_IF_ERROR(fresh.status());
        new_root = *fresh;
        return Status::OK();
      }));
  root_ = new_root;
  sy_->image_loaded = false;
  return ws.Commit();
}

Result<ExternalPst::PendingRebuild> ExternalPst::PrepareGlobalRebuild() {
  PendingRebuild pr;
  std::vector<Point> pts;
  {
    // Harvest needs a write-consistent tree: take every latch for the
    // O(n/B) read pass, release them for the expensive build below. Any
    // update after the release bumps the stamp and aborts the commit.
    std::unique_lock<std::shared_mutex> l0(sy_->side[0]);
    std::unique_lock<std::shared_mutex> l1(sy_->side[1]);
    std::unique_lock<std::mutex> rg(sy_->root_mu);
    CCIDX_RETURN_IF_ERROR(Harvest(&pts, &pr.old_pages));
    pr.stamp = sched_.update_stamp();
  }
  std::sort(pts.begin(), pts.end(), PointXOrder());
  // The prepare phase commits its own (kAlloc-only) txn: a crash between
  // prepare and commit leaves the fresh pages live but unreferenced —
  // bounded to the one pending rebuild (DESIGN.md §13).
  WalScope ws(pager_);
  AllocationScope scope(pager_);
  auto fresh =
      BuildNode(pager_, PointGroup::FromVector(std::move(pts)), NodeCapacity());
  CCIDX_RETURN_IF_ERROR(fresh.status());
  pr.fresh_root = *fresh;
  pr.fresh_pages = scope.pages();
  scope.Commit();
  CCIDX_RETURN_IF_ERROR(ws.Commit());
  return pr;
}

bool ExternalPst::CommitGlobalRebuild(PendingRebuild&& p) {
  std::unique_lock<std::shared_mutex> l0(sy_->side[0]);
  std::unique_lock<std::shared_mutex> l1(sy_->side[1]);
  std::unique_lock<std::mutex> rg(sy_->root_mu);
  // The frees below capture before-images into this txn; a failed commit
  // resolves through the dtor abort, which forces the (unchanged) pages.
  WalScope ws(pager_);
  if (p.stamp != sched_.update_stamp()) {
    // An update landed since the harvest: the prepared tree is stale.
    for (PageId id : p.fresh_pages) (void)pager_->Free(id);
    sy_->rebuild_pending.store(false, kRlx);
    (void)ws.Commit();
    return false;
  }
  root_ = p.fresh_root;
  sy_->image_loaded = false;
  for (PageId id : p.old_pages) (void)pager_->Free(id);
  sched_.Reset();
  sy_->rebuild_pending.store(false, kRlx);
  (void)ws.Commit();
  return true;
}

void ExternalPst::AbandonGlobalRebuild(PendingRebuild&& p) {
  WalScope ws(pager_);
  for (PageId id : p.fresh_pages) (void)pager_->Free(id);
  sy_->rebuild_pending.store(false, kRlx);
  (void)ws.Commit();
}

Status ExternalPst::LoadNode(PageId id, NodeHeader* h,
                             std::vector<Point>* pts) const {
  auto ref = pager_->Pin(id);
  CCIDX_RETURN_IF_ERROR(ref.status());
  PageReader r(ref->data());
  *h = r.Get<NodeHeader>();
  pts->resize(h->count);
  r.GetArray(std::span<Point>(*pts));
  return Status::OK();
}

Status ExternalPst::QueryNode(PageId id, const ThreeSidedQuery& q,
                              SinkEmitter<Point>& em) const {
  if (id == kInvalidPageId || em.stopped()) return Status::OK();
  NodeHeader h;
  {
    // Zero-copy: filter the node's points in place from the pinned frame.
    // The pin is dropped before recursing so pin depth stays O(1).
    auto ref = pager_->Pin(id);
    CCIDX_RETURN_IF_ERROR(ref.status());
    PageReader r(ref->data());
    h = r.Get<NodeHeader>();
    if (h.sub_xlo > q.xhi || h.sub_xhi < q.xlo) return Status::OK();
    std::span<const Point> pts =
        ViewArray<Point>(*ref, sizeof(NodeHeader), h.count);
    // Descending y: qualifying points lie in the y >= ylo prefix; the
    // x-slab filter applies within it.
    simd::EmitFilteredXRange(
        em, pts.first(simd::PrefixYAtLeast(simd::Kernels(), pts, q.ylo)),
        q.xlo, q.xhi);
  }
  // Heap order: every descendant's y is <= this node's min y. If some own
  // point already fell below ylo, no descendant can qualify.
  if (h.min_y < q.ylo || em.stopped()) return Status::OK();
  if (pager_->speculation_budget() > 0 && h.left != kInvalidPageId &&
      h.right != kInvalidPageId) {
    // Both subtrees will be descended: stage the two roots as one batched
    // device round before the left recursion (DESIGN.md §10).
    PageId both[2] = {h.left, h.right};
    pager_->WarmMany(both);
  }
  CCIDX_RETURN_IF_ERROR(QueryNode(h.left, q, em));
  return QueryNode(h.right, q, em);
}

Status ExternalPst::Query(const ThreeSidedQuery& q,
                          SinkEmitter<Point>& em) const {
  if (q.xlo > q.xhi) return Status::OK();
  return QueryNode(root_, q, em);
}

Status ExternalPst::Query(const ThreeSidedQuery& q,
                          ResultSink<Point>* sink) const {
  SinkEmitter<Point> em(sink);
  return Query(q, em);
}

Status ExternalPst::Query(const ThreeSidedQuery& q,
                          std::vector<Point>* out) const {
  VectorSink<Point> sink(out);
  return Query(q, &sink);
}

Status ExternalPst::CollectPoints(std::vector<Point>* out) const {
  return Harvest(out, nullptr);
}

Status ExternalPst::FreeNode(PageId id) {
  if (id == kInvalidPageId) return Status::OK();
  NodeHeader h;
  std::vector<Point> pts;
  CCIDX_RETURN_IF_ERROR(LoadNode(id, &h, &pts));
  CCIDX_RETURN_IF_ERROR(FreeNode(h.left));
  CCIDX_RETURN_IF_ERROR(FreeNode(h.right));
  return pager_->Free(id);
}

Status ExternalPst::Free() {
  WalScope ws(pager_);
  CCIDX_RETURN_IF_ERROR(FreeNode(root_));
  root_ = kInvalidPageId;
  sy_->size.store(0, kRlx);
  sy_->image_loaded = false;
  sched_.Reset();
  return ws.Commit();
}

Status ExternalPst::CheckNode(PageId id, Coord parent_min_y, bool is_root,
                              bool allow_underfull, uint64_t* count) const {
  if (id == kInvalidPageId) return Status::OK();
  NodeHeader h;
  std::vector<Point> pts;
  CCIDX_RETURN_IF_ERROR(LoadNode(id, &h, &pts));
  if (!std::is_sorted(pts.begin(), pts.end(), DescY)) {
    return Status::Corruption("PST node not descending by y");
  }
  for (const Point& p : pts) {
    if (p.x < h.sub_xlo || p.x > h.sub_xhi) {
      return Status::Corruption("PST point outside node x-range");
    }
    if (!is_root && p.y > parent_min_y) {
      return Status::Corruption("PST heap order violated");
    }
  }
  if (!pts.empty() && h.min_y != pts.back().y) {
    return Status::Corruption("PST min_y field incorrect");
  }
  if (pts.empty() && h.min_y != kCoordMax) {
    return Status::Corruption("empty PST node min_y sentinel wrong");
  }
  // Deletes may leave nodes under-full until the scheduled rebuild.
  if (!allow_underfull &&
      (h.left != kInvalidPageId || h.right != kInvalidPageId) &&
      pts.size() < NodeCapacity()) {
    return Status::Corruption("internal PST node not full");
  }
  // An empty node passes its own constraint (none) through: descendants
  // remain bounded by the nearest non-empty ancestor's minimum.
  Coord pass_min = pts.empty() ? parent_min_y : h.min_y;
  *count += pts.size();
  CCIDX_RETURN_IF_ERROR(
      CheckNode(h.left, pass_min, false, allow_underfull, count));
  return CheckNode(h.right, pass_min, false, allow_underfull, count);
}

Status ExternalPst::CheckInvariants() const {
  uint64_t count = 0;
  bool allow_underfull = sched_.deletes_since_rebuild() > 0;
  return CheckNode(root_, kCoordMax, true, allow_underfull, &count);
}

Result<uint64_t> ExternalPst::CountNode(PageId id) const {
  if (id == kInvalidPageId) return static_cast<uint64_t>(0);
  NodeHeader h;
  std::vector<Point> pts;
  CCIDX_RETURN_IF_ERROR(LoadNode(id, &h, &pts));
  auto l = CountNode(h.left);
  CCIDX_RETURN_IF_ERROR(l.status());
  auto r = CountNode(h.right);
  CCIDX_RETURN_IF_ERROR(r.status());
  return 1 + *l + *r;
}

Result<uint64_t> ExternalPst::CountPages() const { return CountNode(root_); }

}  // namespace ccidx
