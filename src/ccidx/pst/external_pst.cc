#include "ccidx/pst/external_pst.h"

#include <algorithm>

namespace ccidx {

namespace {
bool DescY(const Point& a, const Point& b) { return PointYOrder()(b, a); }
}  // namespace

uint32_t ExternalPst::NodeCapacity() const {
  return static_cast<uint32_t>(
      (pager_->page_size() - sizeof(NodeHeader)) / sizeof(Point));
}

Result<PageId> ExternalPst::BuildNode(Pager* pager, PointGroup group,
                                      uint32_t cap) {
  if (group.empty()) return kInvalidPageId;

  // The node keeps the `cap` highest-y points of its range; the rest split
  // into two x-halves.
  NodeHeader h{};
  h.sub_xlo = group.first_x();
  h.sub_xhi = group.last_x();
  h.left = kInvalidPageId;
  h.right = kInvalidPageId;

  std::vector<Point> own;
  if (group.size() <= cap) {
    auto all = std::move(group).TakeAll();
    CCIDX_RETURN_IF_ERROR(all.status());
    own = std::move(*all);
  } else {
    auto part = std::move(group).PartitionTopY(cap, 2);
    CCIDX_RETURN_IF_ERROR(part.status());
    own = std::move(part->top);
    // A one-element rest yields a single child: the right half (the even
    // split gives the left child floor(rest/2) = 0 points).
    PointGroup* left_group =
        part->children.size() > 1 ? &part->children[0] : nullptr;
    PointGroup* right_group =
        part->children.size() > 1 ? &part->children[1] : &part->children[0];
    if (left_group != nullptr) {
      auto left = BuildNode(pager, std::move(*left_group), cap);
      CCIDX_RETURN_IF_ERROR(left.status());
      h.left = *left;
    }
    auto right = BuildNode(pager, std::move(*right_group), cap);
    CCIDX_RETURN_IF_ERROR(right.status());
    h.right = *right;
  }
  std::sort(own.begin(), own.end(), DescY);
  h.count = static_cast<uint32_t>(own.size());
  h.min_y = own.empty() ? kCoordMax : own.back().y;

  auto ref = pager->PinNew();
  CCIDX_RETURN_IF_ERROR(ref.status());
  PageId id = ref->id();
  PageWriter w(ref->data());
  w.Put(h);
  w.PutArray(std::span<const Point>(own));
  CCIDX_RETURN_IF_ERROR(ref->Release());
  return id;
}

Result<ExternalPst> ExternalPst::Build(Pager* pager, PointGroup points) {
  ExternalPst tree(pager, kInvalidPageId);
  uint32_t cap = tree.NodeCapacity();
  if (cap < 1) {
    return Status::InvalidArgument("page size too small for external PST");
  }
  AllocationScope scope(pager);
  auto root = BuildNode(pager, std::move(points), cap);
  CCIDX_RETURN_IF_ERROR(root.status());
  tree.root_ = *root;
  scope.Commit();
  return tree;
}

Result<ExternalPst> ExternalPst::Build(Pager* pager,
                                       RecordStream<Point>* points) {
  AllocationScope scope(pager);
  auto group =
      SortPointStream(pager, points, /*require_above_diagonal=*/false);
  CCIDX_RETURN_IF_ERROR(group.status());
  auto tree = Build(pager, std::move(*group));
  CCIDX_RETURN_IF_ERROR(tree.status());
  scope.Commit();
  return tree;
}

Result<ExternalPst> ExternalPst::Build(Pager* pager,
                                       std::span<const Point> points) {
  return Build(pager, std::vector<Point>(points.begin(), points.end()));
}

Result<ExternalPst> ExternalPst::Build(Pager* pager,
                                       std::vector<Point>&& points) {
  std::sort(points.begin(), points.end(), PointXOrder());
  return Build(pager, PointGroup::FromVector(std::move(points)));
}

ExternalPst ExternalPst::Open(Pager* pager, PageId root) {
  return ExternalPst(pager, root);
}

Status ExternalPst::LoadNode(PageId id, NodeHeader* h,
                             std::vector<Point>* pts) const {
  auto ref = pager_->Pin(id);
  CCIDX_RETURN_IF_ERROR(ref.status());
  PageReader r(ref->data());
  *h = r.Get<NodeHeader>();
  pts->resize(h->count);
  r.GetArray(std::span<Point>(*pts));
  return Status::OK();
}

Status ExternalPst::QueryNode(PageId id, const ThreeSidedQuery& q,
                              SinkEmitter<Point>& em) const {
  if (id == kInvalidPageId || em.stopped()) return Status::OK();
  NodeHeader h;
  {
    // Zero-copy: filter the node's points in place from the pinned frame.
    // The pin is dropped before recursing so pin depth stays O(1).
    auto ref = pager_->Pin(id);
    CCIDX_RETURN_IF_ERROR(ref.status());
    PageReader r(ref->data());
    h = r.Get<NodeHeader>();
    if (h.sub_xlo > q.xhi || h.sub_xhi < q.xlo) return Status::OK();
    std::span<const Point> pts =
        ViewArray<Point>(*ref, sizeof(NodeHeader), h.count);
    // Descending y: qualifying points lie in the y >= ylo prefix; the
    // x-slab filter applies within it.
    em.EmitFiltered(
        TakeWhile(pts, [&q](const Point& p) { return p.y >= q.ylo; }),
        [&q](const Point& p) { return p.x >= q.xlo && p.x <= q.xhi; });
  }
  // Heap order: every descendant's y is <= this node's min y. If some own
  // point already fell below ylo, no descendant can qualify.
  if (h.min_y < q.ylo || em.stopped()) return Status::OK();
  CCIDX_RETURN_IF_ERROR(QueryNode(h.left, q, em));
  return QueryNode(h.right, q, em);
}

Status ExternalPst::Query(const ThreeSidedQuery& q,
                          SinkEmitter<Point>& em) const {
  if (q.xlo > q.xhi) return Status::OK();
  return QueryNode(root_, q, em);
}

Status ExternalPst::Query(const ThreeSidedQuery& q,
                          ResultSink<Point>* sink) const {
  SinkEmitter<Point> em(sink);
  return Query(q, em);
}

Status ExternalPst::Query(const ThreeSidedQuery& q,
                          std::vector<Point>* out) const {
  VectorSink<Point> sink(out);
  return Query(q, &sink);
}

namespace {
// Iterative node walk shared by CollectPoints.
}  // namespace

Status ExternalPst::CollectPoints(std::vector<Point>* out) const {
  std::vector<PageId> stack;
  if (root_ != kInvalidPageId) stack.push_back(root_);
  NodeHeader h;
  std::vector<Point> pts;
  while (!stack.empty()) {
    PageId id = stack.back();
    stack.pop_back();
    CCIDX_RETURN_IF_ERROR(LoadNode(id, &h, &pts));
    out->insert(out->end(), pts.begin(), pts.end());
    if (h.left != kInvalidPageId) stack.push_back(h.left);
    if (h.right != kInvalidPageId) stack.push_back(h.right);
  }
  return Status::OK();
}

Status ExternalPst::FreeNode(PageId id) {
  if (id == kInvalidPageId) return Status::OK();
  NodeHeader h;
  std::vector<Point> pts;
  CCIDX_RETURN_IF_ERROR(LoadNode(id, &h, &pts));
  CCIDX_RETURN_IF_ERROR(FreeNode(h.left));
  CCIDX_RETURN_IF_ERROR(FreeNode(h.right));
  return pager_->Free(id);
}

Status ExternalPst::Free() {
  CCIDX_RETURN_IF_ERROR(FreeNode(root_));
  root_ = kInvalidPageId;
  return Status::OK();
}

Status ExternalPst::CheckNode(PageId id, Coord parent_min_y, bool is_root,
                              uint64_t* count) const {
  if (id == kInvalidPageId) return Status::OK();
  NodeHeader h;
  std::vector<Point> pts;
  CCIDX_RETURN_IF_ERROR(LoadNode(id, &h, &pts));
  if (!std::is_sorted(pts.begin(), pts.end(), DescY)) {
    return Status::Corruption("PST node not descending by y");
  }
  for (const Point& p : pts) {
    if (p.x < h.sub_xlo || p.x > h.sub_xhi) {
      return Status::Corruption("PST point outside node x-range");
    }
    if (!is_root && p.y > parent_min_y) {
      return Status::Corruption("PST heap order violated");
    }
  }
  if (!pts.empty() && h.min_y != pts.back().y) {
    return Status::Corruption("PST min_y field incorrect");
  }
  if ((h.left != kInvalidPageId || h.right != kInvalidPageId) &&
      pts.size() < NodeCapacity()) {
    return Status::Corruption("internal PST node not full");
  }
  *count += pts.size();
  CCIDX_RETURN_IF_ERROR(CheckNode(h.left, h.min_y, false, count));
  return CheckNode(h.right, h.min_y, false, count);
}

Status ExternalPst::CheckInvariants() const {
  uint64_t count = 0;
  return CheckNode(root_, kCoordMax, true, &count);
}

Result<uint64_t> ExternalPst::CountNode(PageId id) const {
  if (id == kInvalidPageId) return static_cast<uint64_t>(0);
  NodeHeader h;
  std::vector<Point> pts;
  CCIDX_RETURN_IF_ERROR(LoadNode(id, &h, &pts));
  auto l = CountNode(h.left);
  CCIDX_RETURN_IF_ERROR(l.status());
  auto r = CountNode(h.right);
  CCIDX_RETURN_IF_ERROR(r.status());
  return 1 + *l + *r;
}

Result<uint64_t> ExternalPst::CountPages() const { return CountNode(root_); }

}  // namespace ccidx
