#include "ccidx/pst/external_pst.h"

#include <algorithm>

#include "ccidx/dynamic/purge_rebuild.h"
#include "ccidx/simd/filter_emit.h"

namespace ccidx {

namespace {
bool DescY(const Point& a, const Point& b) { return PointYOrder()(b, a); }
}  // namespace

uint32_t ExternalPst::NodeCapacity() const {
  return static_cast<uint32_t>(
      (pager_->page_size() - sizeof(NodeHeader)) / sizeof(Point));
}

Result<PageId> ExternalPst::BuildNode(Pager* pager, PointGroup group,
                                      uint32_t cap) {
  if (group.empty()) return kInvalidPageId;

  // The node keeps the `cap` highest-y points of its range; the rest split
  // into two x-halves.
  NodeHeader h{};
  h.sub_xlo = group.first_x();
  h.sub_xhi = group.last_x();
  h.left = kInvalidPageId;
  h.right = kInvalidPageId;

  std::vector<Point> own;
  if (group.size() <= cap) {
    auto all = std::move(group).TakeAll();
    CCIDX_RETURN_IF_ERROR(all.status());
    own = std::move(*all);
  } else {
    auto part = std::move(group).PartitionTopY(cap, 2);
    CCIDX_RETURN_IF_ERROR(part.status());
    own = std::move(part->top);
    // A one-element rest yields a single child: the right half (the even
    // split gives the left child floor(rest/2) = 0 points).
    PointGroup* left_group =
        part->children.size() > 1 ? &part->children[0] : nullptr;
    PointGroup* right_group =
        part->children.size() > 1 ? &part->children[1] : &part->children[0];
    if (left_group != nullptr) {
      auto left = BuildNode(pager, std::move(*left_group), cap);
      CCIDX_RETURN_IF_ERROR(left.status());
      h.left = *left;
    }
    auto right = BuildNode(pager, std::move(*right_group), cap);
    CCIDX_RETURN_IF_ERROR(right.status());
    h.right = *right;
  }
  std::sort(own.begin(), own.end(), DescY);
  h.count = static_cast<uint32_t>(own.size());
  h.min_y = own.empty() ? kCoordMax : own.back().y;

  auto ref = pager->PinNew();
  CCIDX_RETURN_IF_ERROR(ref.status());
  PageId id = ref->id();
  PageWriter w(ref->data());
  w.Put(h);
  w.PutArray(std::span<const Point>(own));
  CCIDX_RETURN_IF_ERROR(ref->Release());
  return id;
}

Result<ExternalPst> ExternalPst::Build(Pager* pager, PointGroup points) {
  ExternalPst tree(pager, kInvalidPageId);
  uint32_t cap = tree.NodeCapacity();
  if (cap < 1) {
    return Status::InvalidArgument("page size too small for external PST");
  }
  AllocationScope scope(pager);
  uint64_t n = points.size();
  auto root = BuildNode(pager, std::move(points), cap);
  CCIDX_RETURN_IF_ERROR(root.status());
  tree.root_ = *root;
  tree.size_ = n;
  scope.Commit();
  return tree;
}

Result<ExternalPst> ExternalPst::Build(Pager* pager,
                                       RecordStream<Point>* points) {
  AllocationScope scope(pager);
  auto group =
      SortPointStream(pager, points, /*require_above_diagonal=*/false);
  CCIDX_RETURN_IF_ERROR(group.status());
  auto tree = Build(pager, std::move(*group));
  CCIDX_RETURN_IF_ERROR(tree.status());
  scope.Commit();
  return tree;
}

Result<ExternalPst> ExternalPst::Build(Pager* pager,
                                       std::span<const Point> points) {
  return Build(pager, std::vector<Point>(points.begin(), points.end()));
}

Result<ExternalPst> ExternalPst::Build(Pager* pager,
                                       std::vector<Point>&& points) {
  std::sort(points.begin(), points.end(), PointXOrder());
  return Build(pager, PointGroup::FromVector(std::move(points)));
}

ExternalPst ExternalPst::Open(Pager* pager, PageId root) {
  return ExternalPst(pager, root);
}

Status ExternalPst::StoreNode(PageId id, NodeHeader& h,
                              const std::vector<Point>& pts) const {
  h.count = static_cast<uint32_t>(pts.size());
  h.min_y = pts.empty() ? kCoordMax : pts.back().y;
  auto ref = pager_->PinMut(id, Pager::MutMode::kOverwrite);
  CCIDX_RETURN_IF_ERROR(ref.status());
  PageWriter w(ref->data());
  w.Put(h);
  w.PutArray(std::span<const Point>(pts));
  return ref->Release();
}

uint32_t ExternalPst::MaxDepth() const {
  uint32_t depth = 2;
  uint64_t nodes = size_ / std::max<uint32_t>(1, NodeCapacity()) + 2;
  while (nodes > 1) {
    nodes >>= 1;
    depth += 2;  // 2x the perfectly balanced height + slack
  }
  return depth + 6;
}

Status ExternalPst::Insert(const Point& p) {
  const uint32_t cap = NodeCapacity();
  sched_.NoteInsert();
  if (root_ == kInvalidPageId) {
    AllocationScope scope(pager_);
    NodeHeader h{};
    h.left = kInvalidPageId;
    h.right = kInvalidPageId;
    h.sub_xlo = h.sub_xhi = p.x;
    PageId id = pager_->Allocate();
    std::vector<Point> pts = {p};
    CCIDX_RETURN_IF_ERROR(StoreNode(id, h, pts));
    scope.Commit();
    root_ = id;
    size_ = 1;
    return Status::OK();
  }

  // Phase 1 — plan the insertion read-only: descend the x-routing path,
  // deciding per node whether the carried point is absorbed, displaces
  // the node minimum, or routes onward. Nothing is written, so a device
  // failure here changes nothing.
  struct PlanEntry {
    PageId old_id;
    NodeHeader h;
    std::vector<Point> pts;
    int side = -1;  // side routed onward (0 = L, 1 = R), -1 = none
  };
  std::vector<PlanEntry> plan;
  bool create_leaf = false;
  Point carried = p;
  PageId id = root_;
  // The routing peek at a child is reused as the next level's node, so
  // the descent costs ~2 page reads per level, not 3.
  bool have_next = false;
  NodeHeader next_h{};
  std::vector<Point> next_pts;
  while (true) {
    PlanEntry e;
    if (have_next) {
      e.h = next_h;
      e.pts = std::move(next_pts);
      have_next = false;
    } else {
      CCIDX_RETURN_IF_ERROR(LoadNode(id, &e.h, &e.pts));
    }
    e.old_id = id;
    e.h.sub_xlo = std::min(e.h.sub_xlo, carried.x);
    e.h.sub_xhi = std::max(e.h.sub_xhi, carried.x);

    const bool is_leaf =
        e.h.left == kInvalidPageId && e.h.right == kInvalidPageId;
    const Coord old_min = e.h.min_y;
    // An internal node may only absorb a point at or above its current
    // minimum (descendants sit at or below it; a lower point staying here
    // would break the heap prune).
    if (e.pts.size() < cap && (is_leaf || carried.y >= old_min)) {
      auto pos = std::lower_bound(e.pts.begin(), e.pts.end(), carried, DescY);
      e.pts.insert(pos, carried);
      plan.push_back(std::move(e));
      break;
    }
    if (carried.y > old_min) {  // displace the minimum downward
      auto pos = std::lower_bound(e.pts.begin(), e.pts.end(), carried, DescY);
      e.pts.insert(pos, carried);
      carried = e.pts.back();
      e.pts.pop_back();
    }
    // Route the carried point by x, creating a leaf below if needed.
    int side;
    NodeHeader lh, rh;
    std::vector<Point> lpts, rpts;
    if (e.h.left == kInvalidPageId && e.h.right == kInvalidPageId) {
      side = 0;
    } else if (e.h.left == kInvalidPageId) {
      CCIDX_RETURN_IF_ERROR(LoadNode(e.h.right, &rh, &rpts));
      side = carried.x < rh.sub_xlo ? 0 : 1;
    } else if (e.h.right == kInvalidPageId) {
      CCIDX_RETURN_IF_ERROR(LoadNode(e.h.left, &lh, &lpts));
      side = carried.x > lh.sub_xhi ? 1 : 0;
    } else {
      CCIDX_RETURN_IF_ERROR(LoadNode(e.h.left, &lh, &lpts));
      CCIDX_RETURN_IF_ERROR(LoadNode(e.h.right, &rh, &rpts));
      if (carried.x <= lh.sub_xhi) {
        side = 0;
      } else if (carried.x >= rh.sub_xlo) {
        side = 1;
      } else {
        // No subtree weights here: widen the NARROWER subtree, a cheap
        // proxy for filling the lighter side. Unsigned arithmetic — the
        // spans are non-negative but may exceed the signed Coord range.
        uint64_t lw = static_cast<uint64_t>(lh.sub_xhi) -
                      static_cast<uint64_t>(lh.sub_xlo);
        uint64_t rw = static_cast<uint64_t>(rh.sub_xhi) -
                      static_cast<uint64_t>(rh.sub_xlo);
        side = lw <= rw ? 0 : 1;
      }
    }
    e.side = side;
    PageId child = side == 0 ? e.h.left : e.h.right;
    plan.push_back(std::move(e));
    if (child == kInvalidPageId) {
      create_leaf = true;
      break;
    }
    // A valid routed child was always peeked above — reuse the load.
    if (side == 0) {
      next_h = lh;
      next_pts = std::move(lpts);
    } else {
      next_h = rh;
      next_pts = std::move(rpts);
    }
    have_next = true;
    id = child;
  }

  // Phase 2 — shadow the path: every planned node is written as a fresh
  // page (bottom-up, children wired to the replacements) under an
  // AllocationScope. A failure rolls the new pages back and leaves the
  // old tree — still rooted at root_ — untouched.
  AllocationScope scope(pager_);
  PageId below = kInvalidPageId;
  if (create_leaf) {
    NodeHeader nh{};
    nh.left = kInvalidPageId;
    nh.right = kInvalidPageId;
    nh.sub_xlo = nh.sub_xhi = carried.x;
    below = pager_->Allocate();
    std::vector<Point> npts = {carried};
    CCIDX_RETURN_IF_ERROR(StoreNode(below, nh, npts));
  }
  for (size_t i = plan.size(); i-- > 0;) {
    PlanEntry& e = plan[i];
    if (e.side == 0) {
      e.h.left = below;
    } else if (e.side == 1) {
      e.h.right = below;
    }
    PageId nid = pager_->Allocate();
    CCIDX_RETURN_IF_ERROR(StoreNode(nid, e.h, e.pts));
    below = nid;
  }
  scope.Commit();
  // Point of no return: retire the old path by id (no device reads).
  for (const PlanEntry& e : plan) {
    (void)pager_->Free(e.old_id);
  }
  root_ = below;
  size_++;
  if (plan.size() + (create_leaf ? 1u : 0u) > MaxDepth() ||
      sched_.ShouldRebuild(size_)) {
    return GlobalRebuild();
  }
  return Status::OK();
}

Status ExternalPst::DeleteNode(PageId id, const Point& p, bool* found) {
  if (id == kInvalidPageId) {
    *found = false;
    return Status::OK();
  }
  NodeHeader h;
  std::vector<Point> pts;
  CCIDX_RETURN_IF_ERROR(LoadNode(id, &h, &pts));
  if (p.x < h.sub_xlo || p.x > h.sub_xhi) {
    *found = false;
    return Status::OK();
  }
  for (size_t i = 0; i < pts.size(); ++i) {
    if (pts[i] == p) {
      pts.erase(pts.begin() + i);
      *found = true;
      // The single in-place write of the whole operation: atomic under
      // fault injection (a failed device write leaves the old page).
      return StoreNode(id, h, pts);
    }
  }
  // Heap order: every descendant lies at or below this node's minimum.
  if (!pts.empty() && p.y > h.min_y) {
    *found = false;
    return Status::OK();
  }
  CCIDX_RETURN_IF_ERROR(DeleteNode(h.left, p, found));
  if (!*found) {
    CCIDX_RETURN_IF_ERROR(DeleteNode(h.right, p, found));
  }
  return Status::OK();
}

Status ExternalPst::Delete(const Point& p, bool* found) {
  *found = false;
  if (root_ == kInvalidPageId) return Status::OK();
  CCIDX_RETURN_IF_ERROR(DeleteNode(root_, p, found));
  if (!*found) return Status::OK();
  if (size_ > 0) size_--;
  sched_.NoteDelete();
  if (sched_.ShouldRebuild(size_)) return GlobalRebuild();
  return Status::OK();
}

Status ExternalPst::Harvest(std::vector<Point>* pts,
                            std::vector<PageId>* pages) const {
  std::vector<PageId> stack;
  if (root_ != kInvalidPageId) stack.push_back(root_);
  NodeHeader h;
  std::vector<Point> own;
  while (!stack.empty()) {
    PageId id = stack.back();
    stack.pop_back();
    CCIDX_RETURN_IF_ERROR(LoadNode(id, &h, &own));
    if (pts != nullptr) pts->insert(pts->end(), own.begin(), own.end());
    if (pages != nullptr) pages->push_back(id);
    if (h.left != kInvalidPageId) stack.push_back(h.left);
    if (h.right != kInvalidPageId) stack.push_back(h.right);
  }
  return Status::OK();
}

Status ExternalPst::VisitPages(std::vector<PageId>* out) const {
  return Harvest(nullptr, out);
}

Status ExternalPst::GlobalRebuild() {
  // Shared fault-atomic skeleton (dynamic/purge_rebuild.h). The PST
  // deletes records eagerly (no tombstone set), so every harvested point
  // is live; the skeleton still supplies the harvest / scoped-build /
  // retire-by-id sequencing.
  PageId new_root = kInvalidPageId;
  CCIDX_RETURN_IF_ERROR(PurgeRebuild(
      pager_, static_cast<PointTombstones*>(nullptr), &sched_,
      [&](std::vector<Point>* out) { return Harvest(out, nullptr); },
      [&](std::vector<PageId>* out) { return VisitPages(out); },
      [&](std::vector<Point> live) {
        std::sort(live.begin(), live.end(), PointXOrder());
        auto fresh = BuildNode(pager_, PointGroup::FromVector(std::move(live)),
                               NodeCapacity());
        CCIDX_RETURN_IF_ERROR(fresh.status());
        new_root = *fresh;
        return Status::OK();
      }));
  root_ = new_root;
  return Status::OK();
}

Status ExternalPst::LoadNode(PageId id, NodeHeader* h,
                             std::vector<Point>* pts) const {
  auto ref = pager_->Pin(id);
  CCIDX_RETURN_IF_ERROR(ref.status());
  PageReader r(ref->data());
  *h = r.Get<NodeHeader>();
  pts->resize(h->count);
  r.GetArray(std::span<Point>(*pts));
  return Status::OK();
}

Status ExternalPst::QueryNode(PageId id, const ThreeSidedQuery& q,
                              SinkEmitter<Point>& em) const {
  if (id == kInvalidPageId || em.stopped()) return Status::OK();
  NodeHeader h;
  {
    // Zero-copy: filter the node's points in place from the pinned frame.
    // The pin is dropped before recursing so pin depth stays O(1).
    auto ref = pager_->Pin(id);
    CCIDX_RETURN_IF_ERROR(ref.status());
    PageReader r(ref->data());
    h = r.Get<NodeHeader>();
    if (h.sub_xlo > q.xhi || h.sub_xhi < q.xlo) return Status::OK();
    std::span<const Point> pts =
        ViewArray<Point>(*ref, sizeof(NodeHeader), h.count);
    // Descending y: qualifying points lie in the y >= ylo prefix; the
    // x-slab filter applies within it.
    simd::EmitFilteredXRange(
        em, pts.first(simd::PrefixYAtLeast(simd::Kernels(), pts, q.ylo)),
        q.xlo, q.xhi);
  }
  // Heap order: every descendant's y is <= this node's min y. If some own
  // point already fell below ylo, no descendant can qualify.
  if (h.min_y < q.ylo || em.stopped()) return Status::OK();
  if (pager_->speculation_budget() > 0 && h.left != kInvalidPageId &&
      h.right != kInvalidPageId) {
    // Both subtrees will be descended: stage the two roots as one batched
    // device round before the left recursion (DESIGN.md §10).
    PageId both[2] = {h.left, h.right};
    pager_->WarmMany(both);
  }
  CCIDX_RETURN_IF_ERROR(QueryNode(h.left, q, em));
  return QueryNode(h.right, q, em);
}

Status ExternalPst::Query(const ThreeSidedQuery& q,
                          SinkEmitter<Point>& em) const {
  if (q.xlo > q.xhi) return Status::OK();
  return QueryNode(root_, q, em);
}

Status ExternalPst::Query(const ThreeSidedQuery& q,
                          ResultSink<Point>* sink) const {
  SinkEmitter<Point> em(sink);
  return Query(q, em);
}

Status ExternalPst::Query(const ThreeSidedQuery& q,
                          std::vector<Point>* out) const {
  VectorSink<Point> sink(out);
  return Query(q, &sink);
}

Status ExternalPst::CollectPoints(std::vector<Point>* out) const {
  return Harvest(out, nullptr);
}

Status ExternalPst::FreeNode(PageId id) {
  if (id == kInvalidPageId) return Status::OK();
  NodeHeader h;
  std::vector<Point> pts;
  CCIDX_RETURN_IF_ERROR(LoadNode(id, &h, &pts));
  CCIDX_RETURN_IF_ERROR(FreeNode(h.left));
  CCIDX_RETURN_IF_ERROR(FreeNode(h.right));
  return pager_->Free(id);
}

Status ExternalPst::Free() {
  CCIDX_RETURN_IF_ERROR(FreeNode(root_));
  root_ = kInvalidPageId;
  size_ = 0;
  sched_.Reset();
  return Status::OK();
}

Status ExternalPst::CheckNode(PageId id, Coord parent_min_y, bool is_root,
                              bool allow_underfull, uint64_t* count) const {
  if (id == kInvalidPageId) return Status::OK();
  NodeHeader h;
  std::vector<Point> pts;
  CCIDX_RETURN_IF_ERROR(LoadNode(id, &h, &pts));
  if (!std::is_sorted(pts.begin(), pts.end(), DescY)) {
    return Status::Corruption("PST node not descending by y");
  }
  for (const Point& p : pts) {
    if (p.x < h.sub_xlo || p.x > h.sub_xhi) {
      return Status::Corruption("PST point outside node x-range");
    }
    if (!is_root && p.y > parent_min_y) {
      return Status::Corruption("PST heap order violated");
    }
  }
  if (!pts.empty() && h.min_y != pts.back().y) {
    return Status::Corruption("PST min_y field incorrect");
  }
  if (pts.empty() && h.min_y != kCoordMax) {
    return Status::Corruption("empty PST node min_y sentinel wrong");
  }
  // Deletes may leave nodes under-full until the scheduled rebuild.
  if (!allow_underfull &&
      (h.left != kInvalidPageId || h.right != kInvalidPageId) &&
      pts.size() < NodeCapacity()) {
    return Status::Corruption("internal PST node not full");
  }
  // An empty node passes its own constraint (none) through: descendants
  // remain bounded by the nearest non-empty ancestor's minimum.
  Coord pass_min = pts.empty() ? parent_min_y : h.min_y;
  *count += pts.size();
  CCIDX_RETURN_IF_ERROR(
      CheckNode(h.left, pass_min, false, allow_underfull, count));
  return CheckNode(h.right, pass_min, false, allow_underfull, count);
}

Status ExternalPst::CheckInvariants() const {
  uint64_t count = 0;
  bool allow_underfull = sched_.deletes_since_rebuild() > 0;
  return CheckNode(root_, kCoordMax, true, allow_underfull, &count);
}

Result<uint64_t> ExternalPst::CountNode(PageId id) const {
  if (id == kInvalidPageId) return static_cast<uint64_t>(0);
  NodeHeader h;
  std::vector<Point> pts;
  CCIDX_RETURN_IF_ERROR(LoadNode(id, &h, &pts));
  auto l = CountNode(h.left);
  CCIDX_RETURN_IF_ERROR(l.status());
  auto r = CountNode(h.right);
  CCIDX_RETURN_IF_ERROR(r.status());
  return 1 + *l + *r;
}

Result<uint64_t> ExternalPst::CountPages() const { return CountNode(root_); }

}  // namespace ccidx
