#include "ccidx/pst/dynamic_pst.h"

#include <algorithm>

#include "ccidx/io/wal.h"
#include "ccidx/simd/filter_emit.h"
#include <cmath>

namespace ccidx {

namespace {
bool DescY(const Point& a, const Point& b) { return PointYOrder()(b, a); }
}  // namespace

DynamicPst::DynamicPst(Pager* pager)
    : pager_(pager), root_(kInvalidPageId), size_(0) {
  CCIDX_CHECK(NodeCapacity() >= 2);
}

uint32_t DynamicPst::NodeCapacity() const {
  return static_cast<uint32_t>(
      (pager_->page_size() - sizeof(NodeHeader)) / sizeof(Point));
}

Status DynamicPst::LoadNode(PageId id, NodeHeader* h,
                            std::vector<Point>* pts) const {
  auto ref = pager_->Pin(id);
  CCIDX_RETURN_IF_ERROR(ref.status());
  PageReader r(ref->data());
  *h = r.Get<NodeHeader>();
  pts->resize(h->count);
  r.GetArray(std::span<Point>(*pts));
  return Status::OK();
}

Status DynamicPst::StoreNode(PageId id, NodeHeader& h,
                             std::vector<Point>* pts) const {
  h.count = static_cast<uint32_t>(pts->size());
  h.min_y = pts->empty() ? kCoordMax : pts->back().y;
  auto ref = pager_->PinMut(id, Pager::MutMode::kOverwrite);
  CCIDX_RETURN_IF_ERROR(ref.status());
  PageWriter w(ref->data());
  w.Put(h);
  w.PutArray(std::span<const Point>(*pts));
  return ref->Release();
}

Result<PageId> DynamicPst::BuildNode(Pager* pager, PointGroup group,
                                     uint32_t cap) {
  if (group.empty()) return kInvalidPageId;
  NodeHeader h{};
  h.left = kInvalidPageId;
  h.right = kInvalidPageId;
  h.sub_xlo = group.first_x();
  h.sub_xhi = group.last_x();
  h.weight = group.size();

  std::vector<Point> own;
  if (group.size() <= cap) {
    auto all = std::move(group).TakeAll();
    CCIDX_RETURN_IF_ERROR(all.status());
    own = std::move(*all);
  } else {
    auto part = std::move(group).PartitionTopY(cap, 2);
    CCIDX_RETURN_IF_ERROR(part.status());
    own = std::move(part->top);
    PointGroup* left_group =
        part->children.size() > 1 ? &part->children[0] : nullptr;
    PointGroup* right_group =
        part->children.size() > 1 ? &part->children[1] : &part->children[0];
    if (left_group != nullptr) {
      auto left = BuildNode(pager, std::move(*left_group), cap);
      CCIDX_RETURN_IF_ERROR(left.status());
      h.left = *left;
    }
    auto right = BuildNode(pager, std::move(*right_group), cap);
    CCIDX_RETURN_IF_ERROR(right.status());
    h.right = *right;
  }
  std::sort(own.begin(), own.end(), DescY);
  h.count = static_cast<uint32_t>(own.size());
  h.min_y = own.empty() ? kCoordMax : own.back().y;
  auto ref = pager->PinNew();
  CCIDX_RETURN_IF_ERROR(ref.status());
  PageId id = ref->id();
  PageWriter w(ref->data());
  w.Put(h);
  w.PutArray(std::span<const Point>(own));
  CCIDX_RETURN_IF_ERROR(ref->Release());
  return id;
}

Result<DynamicPst> DynamicPst::Build(Pager* pager, PointGroup points) {
  DynamicPst tree(pager);
  // Every page is allocated inside the txn, so the log carries kAlloc
  // records only; a crash mid-build frees the partial tree on recovery.
  WalScope ws(pager);
  AllocationScope scope(pager);
  uint64_t n = points.size();
  auto root = BuildNode(pager, std::move(points), tree.NodeCapacity());
  CCIDX_RETURN_IF_ERROR(root.status());
  tree.root_ = *root;
  tree.size_ = n;
  scope.Commit();
  CCIDX_RETURN_IF_ERROR(ws.Commit());
  return tree;
}

Result<DynamicPst> DynamicPst::Build(Pager* pager,
                                     RecordStream<Point>* points) {
  AllocationScope scope(pager);
  auto group =
      SortPointStream(pager, points, /*require_above_diagonal=*/false);
  CCIDX_RETURN_IF_ERROR(group.status());
  auto tree = Build(pager, std::move(*group));
  CCIDX_RETURN_IF_ERROR(tree.status());
  scope.Commit();
  return tree;
}

Result<DynamicPst> DynamicPst::Build(Pager* pager,
                                     std::span<const Point> points) {
  return Build(pager, std::vector<Point>(points.begin(), points.end()));
}

Result<DynamicPst> DynamicPst::Build(Pager* pager,
                                     std::vector<Point>&& points) {
  std::sort(points.begin(), points.end(), PointXOrder());
  return Build(pager, PointGroup::FromVector(std::move(points)));
}

Status DynamicPst::Insert(const Point& p) {
  std::lock_guard<std::mutex> write_lock(*write_mu_);
  // Single-writer structure: one WAL txn covers the whole insert —
  // descent writes, any scapegoat rebuild, and the scheduled global
  // rebuild — committed before write_mu_ is released.
  WalScope ws(pager_);
  const uint32_t cap = NodeCapacity();
  size_++;
  sched_.NoteInsert();
  if (root_ == kInvalidPageId) {
    NodeHeader h{};
    h.left = kInvalidPageId;
    h.right = kInvalidPageId;
    h.sub_xlo = h.sub_xhi = p.x;
    h.weight = 1;
    std::vector<Point> pts = {p};
    root_ = pager_->Allocate();
    CCIDX_RETURN_IF_ERROR(StoreNode(root_, h, &pts));
    return ws.Commit();
  }

  struct PathEntry {
    PageId id;
    uint64_t weight;  // after the increment
    int side;         // side taken to reach the NEXT entry (0 = L, 1 = R)
  };
  std::vector<PathEntry> path;

  Point carried = p;
  PageId id = root_;
  NodeHeader h;
  std::vector<Point> pts;
  while (true) {
    CCIDX_RETURN_IF_ERROR(LoadNode(id, &h, &pts));
    h.weight++;
    h.sub_xlo = std::min(h.sub_xlo, carried.x);
    h.sub_xhi = std::max(h.sub_xhi, carried.x);
    path.push_back({id, h.weight, -1});

    const bool is_leaf =
        h.left == kInvalidPageId && h.right == kInvalidPageId;
    const Coord old_min = h.min_y;
    // An internal node may only absorb a point at or above its current
    // minimum (descendants sit at or below that minimum; letting a lower
    // point stay here would break the heap prune).
    bool absorb = pts.size() < cap && (is_leaf || carried.y >= old_min);
    if (absorb) {
      auto pos = std::lower_bound(pts.begin(), pts.end(), carried, DescY);
      pts.insert(pos, carried);
      CCIDX_RETURN_IF_ERROR(StoreNode(id, h, &pts));
      break;
    }
    if (carried.y > old_min ||
        (pts.size() < cap && is_leaf)) {  // displace the minimum
      auto pos = std::lower_bound(pts.begin(), pts.end(), carried, DescY);
      pts.insert(pos, carried);
      carried = pts.back();
      pts.pop_back();
    }
    // Route `carried` to a child, creating a leaf if needed.
    int side;
    NodeHeader lh, rh;
    std::vector<Point> tmp;
    if (h.left == kInvalidPageId && h.right == kInvalidPageId) {
      side = 0;
    } else if (h.left == kInvalidPageId) {
      CCIDX_RETURN_IF_ERROR(LoadNode(h.right, &rh, &tmp));
      side = carried.x < rh.sub_xlo ? 0 : 1;
    } else if (h.right == kInvalidPageId) {
      CCIDX_RETURN_IF_ERROR(LoadNode(h.left, &lh, &tmp));
      side = carried.x > lh.sub_xhi ? 1 : 0;
    } else {
      CCIDX_RETURN_IF_ERROR(LoadNode(h.left, &lh, &tmp));
      tmp.clear();
      CCIDX_RETURN_IF_ERROR(LoadNode(h.right, &rh, &tmp));
      if (carried.x <= lh.sub_xhi) {
        side = 0;
      } else if (carried.x >= rh.sub_xlo) {
        side = 1;
      } else {
        side = lh.weight <= rh.weight ? 0 : 1;  // fill the gap evenly
      }
    }
    path.back().side = side;
    PageId child = side == 0 ? h.left : h.right;
    if (child == kInvalidPageId) {
      NodeHeader nh{};
      nh.left = kInvalidPageId;
      nh.right = kInvalidPageId;
      nh.sub_xlo = nh.sub_xhi = carried.x;
      nh.weight = 1;
      std::vector<Point> npts = {carried};
      child = pager_->Allocate();
      CCIDX_RETURN_IF_ERROR(StoreNode(child, nh, &npts));
      if (side == 0) {
        h.left = child;
      } else {
        h.right = child;
      }
      CCIDX_RETURN_IF_ERROR(StoreNode(id, h, &pts));
      path.push_back({child, 1, -1});
      break;
    }
    CCIDX_RETURN_IF_ERROR(StoreNode(id, h, &pts));
    id = child;
  }

  // Scapegoat check: rebuild the highest child subtree that outweighs the
  // balance fraction of its parent.
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    if (static_cast<double>(path[i + 1].weight) >
        kAlpha * static_cast<double>(path[i].weight)) {
      PageId sub = path[i + 1].id;
      CCIDX_RETURN_IF_ERROR(RebuildAt(&sub));
      NodeHeader ph;
      std::vector<Point> ppts;
      CCIDX_RETURN_IF_ERROR(LoadNode(path[i].id, &ph, &ppts));
      if (path[i].side == 0) {
        ph.left = sub;
      } else {
        ph.right = sub;
      }
      CCIDX_RETURN_IF_ERROR(StoreNode(path[i].id, ph, &ppts));
      break;
    }
  }
  if (sched_.ShouldRebuild(size_)) {
    CCIDX_RETURN_IF_ERROR(RebuildAt(&root_));
    sched_.Reset();
  }
  return ws.Commit();
}

Status DynamicPst::DeleteNode(PageId id, const Point& p, bool* found) {
  if (id == kInvalidPageId) {
    *found = false;
    return Status::OK();
  }
  NodeHeader h;
  std::vector<Point> pts;
  CCIDX_RETURN_IF_ERROR(LoadNode(id, &h, &pts));
  if (p.x < h.sub_xlo || p.x > h.sub_xhi) {
    *found = false;
    return Status::OK();
  }
  for (size_t i = 0; i < pts.size(); ++i) {
    if (pts[i] == p) {
      pts.erase(pts.begin() + i);
      h.weight--;
      *found = true;
      return StoreNode(id, h, &pts);
    }
  }
  // Heap order: every descendant lies at or below this node's minimum.
  if (!pts.empty() && p.y > h.min_y) {
    *found = false;
    return Status::OK();
  }
  CCIDX_RETURN_IF_ERROR(DeleteNode(h.left, p, found));
  if (!*found) {
    CCIDX_RETURN_IF_ERROR(DeleteNode(h.right, p, found));
  }
  if (*found) {
    h.weight--;
    CCIDX_RETURN_IF_ERROR(StoreNode(id, h, &pts));
  }
  return Status::OK();
}

Status DynamicPst::Delete(const Point& p, bool* found) {
  std::lock_guard<std::mutex> write_lock(*write_mu_);
  // A not-found delete writes nothing: the uncommitted scope unwinds as
  // a zero-record no-op (no fsync).
  WalScope ws(pager_);
  *found = false;
  if (root_ == kInvalidPageId) return Status::OK();
  CCIDX_RETURN_IF_ERROR(DeleteNode(root_, p, found));
  if (*found) {
    size_--;
    sched_.NoteDelete();
    if (sched_.ShouldRebuild(size_)) {
      CCIDX_RETURN_IF_ERROR(RebuildAt(&root_));
      sched_.Reset();
    }
    return ws.Commit();
  }
  return Status::OK();
}

Status DynamicPst::QueryNode(PageId id, const ThreeSidedQuery& q,
                             SinkEmitter<Point>& em) const {
  if (id == kInvalidPageId || em.stopped()) return Status::OK();
  NodeHeader h;
  {
    // Zero-copy scan of the node's points; pin dropped before recursion.
    auto ref = pager_->Pin(id);
    CCIDX_RETURN_IF_ERROR(ref.status());
    PageReader r(ref->data());
    h = r.Get<NodeHeader>();
    if (h.sub_xlo > q.xhi || h.sub_xhi < q.xlo) return Status::OK();
    std::span<const Point> pts =
        ViewArray<Point>(*ref, sizeof(NodeHeader), h.count);
    simd::EmitFilteredXRange(
        em, pts.first(simd::PrefixYAtLeast(simd::Kernels(), pts, q.ylo)),
        q.xlo, q.xhi);
  }
  if (h.min_y < q.ylo || em.stopped()) return Status::OK();
  CCIDX_RETURN_IF_ERROR(QueryNode(h.left, q, em));
  return QueryNode(h.right, q, em);
}

Status DynamicPst::Query(const ThreeSidedQuery& q,
                         ResultSink<Point>* sink) const {
  if (q.xlo > q.xhi) return Status::OK();
  SinkEmitter<Point> em(sink);
  return QueryNode(root_, q, em);
}

Status DynamicPst::Query(const ThreeSidedQuery& q,
                         std::vector<Point>* out) const {
  VectorSink<Point> sink(out);
  return Query(q, &sink);
}

Status DynamicPst::CollectNode(PageId id, std::vector<Point>* out) const {
  if (id == kInvalidPageId) return Status::OK();
  NodeHeader h;
  std::vector<Point> pts;
  CCIDX_RETURN_IF_ERROR(LoadNode(id, &h, &pts));
  out->insert(out->end(), pts.begin(), pts.end());
  CCIDX_RETURN_IF_ERROR(CollectNode(h.left, out));
  return CollectNode(h.right, out);
}

Status DynamicPst::FreeNode(PageId id) {
  if (id == kInvalidPageId) return Status::OK();
  NodeHeader h;
  std::vector<Point> pts;
  CCIDX_RETURN_IF_ERROR(LoadNode(id, &h, &pts));
  CCIDX_RETURN_IF_ERROR(FreeNode(h.left));
  CCIDX_RETURN_IF_ERROR(FreeNode(h.right));
  return pager_->Free(id);
}

Status DynamicPst::RebuildAt(PageId* id) {
  std::vector<Point> all;
  CCIDX_RETURN_IF_ERROR(CollectNode(*id, &all));
  CCIDX_RETURN_IF_ERROR(FreeNode(*id));
  std::sort(all.begin(), all.end(), PointXOrder());
  auto fresh = BuildNode(pager_, PointGroup::FromVector(std::move(all)),
                         NodeCapacity());
  CCIDX_RETURN_IF_ERROR(fresh.status());
  *id = *fresh;
  return Status::OK();
}

Status DynamicPst::Destroy() {
  std::lock_guard<std::mutex> write_lock(*write_mu_);
  WalScope ws(pager_);
  CCIDX_RETURN_IF_ERROR(FreeNode(root_));
  root_ = kInvalidPageId;
  size_ = 0;
  return ws.Commit();
}

Status DynamicPst::CheckNode(PageId id, Coord parent_min_y, bool is_root,
                             uint64_t* weight, uint32_t depth,
                             uint32_t max_depth) const {
  *weight = 0;
  if (id == kInvalidPageId) return Status::OK();
  if (depth > max_depth) {
    return Status::Corruption("dynamic PST deeper than balance envelope");
  }
  NodeHeader h;
  std::vector<Point> pts;
  CCIDX_RETURN_IF_ERROR(LoadNode(id, &h, &pts));
  if (!std::is_sorted(pts.begin(), pts.end(), DescY)) {
    return Status::Corruption("node not descending by y");
  }
  for (const Point& p : pts) {
    if (p.x < h.sub_xlo || p.x > h.sub_xhi) {
      return Status::Corruption("point outside node x-range");
    }
    if (!is_root && p.y > parent_min_y) {
      return Status::Corruption("heap order violated");
    }
  }
  if (!pts.empty() && h.min_y != pts.back().y) {
    return Status::Corruption("min_y incorrect");
  }
  if (pts.empty() && h.min_y != kCoordMax) {
    return Status::Corruption("empty node min_y sentinel wrong");
  }
  uint64_t wl = 0, wr = 0;
  Coord pass_min = pts.empty() ? parent_min_y : h.min_y;
  CCIDX_RETURN_IF_ERROR(
      CheckNode(h.left, pass_min, false, &wl, depth + 1, max_depth));
  CCIDX_RETURN_IF_ERROR(
      CheckNode(h.right, pass_min, false, &wr, depth + 1, max_depth));
  if (h.weight != pts.size() + wl + wr) {
    return Status::Corruption("weight counter mismatch");
  }
  *weight = h.weight;
  return Status::OK();
}

Status DynamicPst::CheckInvariants() const {
  if (root_ == kInvalidPageId) {
    return size_ == 0 ? Status::OK()
                      : Status::Corruption("empty tree, nonzero size");
  }
  // Scapegoat balance: depth <= log_{1/alpha}(weight) + slack, loosened by
  // pending deletions awaiting the next global rebuild.
  double denom = std::log(1.0 / kAlpha);
  uint32_t max_depth = static_cast<uint32_t>(
      std::log(static_cast<double>(2 * size_ + 4)) / denom) + 6;
  uint64_t weight = 0;
  CCIDX_RETURN_IF_ERROR(
      CheckNode(root_, kCoordMax, true, &weight, 0, max_depth));
  if (weight != size_) {
    return Status::Corruption("size mismatch");
  }
  return Status::OK();
}

}  // namespace ccidx
