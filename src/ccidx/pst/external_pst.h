// ExternalPst: a blocked external-memory priority search tree (Lemma 4.1,
// after Icking–Klein–Ottmann [17]).
//
// A binary tree over the x-sorted point set in which every node occupies
// one page and stores the ~B points with the largest y values among the
// points of its subtree range (a B-blocked analogue of McCreight's priority
// search tree). Answers 3-sided queries [xlo, xhi] x [ylo, +inf) in
// O(log2 n + t/B) I/Os using O(n/B) pages, and is buildable in
// O((n/B) log_B n) I/Os.
//
// Note the log2 (not log_B) search term: this is the structure the paper
// cites as the best previous approach — the metablock tree's raison d'être
// is removing that binary-height factor for the diagonal special case.
// Here it serves two roles:
//   * experiment E8's baseline, and
//   * the per-metablock / per-children 3-sided sub-structure of the
//     Section 4 class-indexing tree (where it only ever holds O(B^3)
//     points, so its log2 term is the paper's log2 B additive cost).
//
// Dynamization (DESIGN.md §8): Build-constructed handles support updates.
//   * Insert is a shadow-path PST insertion: the x-routing descent is
//     planned read-only, every node on the path below the root is
//     rewritten as a fresh page under an AllocationScope, and the old
//     path is freed — by page id, no reads — only after the root commits
//     the new child pointer, so a failed insert leaves the old tree
//     untouched and fault-atomic. O(log2 n) I/Os per insert plus an
//     amortized O((log2 n)/B) global-rebuild charge (the shared
//     RebuildScheduler re-balances after Theta(n) updates or when the
//     routing path outgrows the balance envelope).
//   * Delete locates the point (heap order prunes), erases it in place
//     (one page write — atomic under fault injection), lets the node go
//     under-full, and pays the same amortized rebuild charge.
//     O(log2 n) I/Os amortized.
//
// Write concurrency (DESIGN.md §11): within a write epoch, Insert and
// Delete are safe from N threads. The root page is special-cased: an
// authoritative in-memory image of it (header + point set) lives behind
// `root_mu`, so root absorbs and root displacements are short critical
// sections, while the two root subtrees are guarded by one shared_mutex
// each — an insert routes through exactly one subtree and takes its
// latch exclusive; deletes take it shared and serialize per node on a
// striped latch. Latch order: side[0] -> side[1] -> root_mu (never a
// side latch while holding root_mu); node stripes are innermost and
// held one at a time. Global rebuilds take everything; split-phase
// background rebuilds (PrepareGlobalRebuild / CommitGlobalRebuild)
// validate a RebuildScheduler::update_stamp() so a rebuild prepared
// concurrently with updates aborts instead of clobbering them.
//
// Sub-structure handles re-attached with Open() are static views: they
// do not track size and must not be updated.

#ifndef CCIDX_PST_EXTERNAL_PST_H_
#define CCIDX_PST_EXTERNAL_PST_H_

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <vector>

#include "ccidx/build/point_group.h"
#include "ccidx/build/record_stream.h"
#include "ccidx/core/geometry.h"
#include "ccidx/dynamic/rebuild.h"
#include "ccidx/io/page_builder.h"
#include "ccidx/query/sink.h"

namespace ccidx {

/// External priority search tree for 3-sided queries.
///
/// Thread safety (DESIGN.md §7/§11): Query is const and safe to run from
/// any number of threads concurrently over one shared Pager; the epoch
/// gate excludes it from writes. Within a write epoch Insert/Delete are
/// safe from N threads concurrently (see file comment for the latch
/// protocol). Build, Free, Harvest-family walks, and CheckInvariants
/// require full quiescence.
class ExternalPst {
 public:
  /// Builds from an x-sorted group (any planar points; no y >= x
  /// restriction) — the one construction implementation (fault-atomic).
  static Result<ExternalPst> Build(Pager* pager, PointGroup points);

  /// Builds from a stream in any order, sorting externally.
  static Result<ExternalPst> Build(Pager* pager, RecordStream<Point>* points);

  /// In-core wrappers (sort in memory, then build). The PST doubles as
  /// the per-metablock sub-structure of the Section 4 trees, whose
  /// inputs are bounded by O(B^3) — within the model's working memory —
  /// so these paths deliberately skip the external sorter.
  static Result<ExternalPst> Build(Pager* pager, std::span<const Point> points);
  static Result<ExternalPst> Build(Pager* pager, std::vector<Point>&& points);

  /// Re-attaches to a previously built tree by its root page (a static
  /// view: size is not tracked, updates are not supported).
  static ExternalPst Open(Pager* pager, PageId root);

  /// Inserts a point via a shadow path (see file comment): fault-atomic,
  /// O(log2 n) I/Os + amortized O((log2 n)/B) rebuild charge. Safe from
  /// N writer threads within a write epoch.
  Status Insert(const Point& p);

  /// Deletes the exact point (x, y, id); sets *found. One in-place page
  /// write after a pruned search; amortized O(log2 n) I/Os. Safe from N
  /// writer threads within a write epoch.
  Status Delete(const Point& p, bool* found);

  /// Points stored (tracked only on Build-constructed handles).
  /// Thread-safe (relaxed read).
  uint64_t size() const { return sy_->size.load(std::memory_order_relaxed); }

  /// Streams all points with xlo <= x <= xhi and y >= ylo into `sink`;
  /// kStop halts the recursion before another node page is pinned.
  /// O(log2 n + t/B) I/Os.
  Status Query(const ThreeSidedQuery& q, ResultSink<Point>* sink) const;

  /// As above, driven by a caller-owned emitter (shared with an enclosing
  /// 3-sided-tree query so kStop propagates across structures).
  Status Query(const ThreeSidedQuery& q, SinkEmitter<Point>& em) const;

  /// Appends all points with xlo <= x <= xhi and y >= ylo to `out`.
  /// O(log2 n + t/B) I/Os.
  Status Query(const ThreeSidedQuery& q, std::vector<Point>* out) const;

  PageId root() const { return root_; }

  /// Frees every page. Requires full quiescence.
  Status Free();

  /// Appends every stored point to `out` (O(n/B) I/Os). Used when a
  /// Lemma 4.4 TD structure is rebuilt. Requires write quiescence.
  Status CollectPoints(std::vector<Point>* out) const;

  /// Appends every page id of the tree to `out` (read-only mirror of
  /// Free; the fail-safe first half of a fault-atomic rebuild).
  Status VisitPages(std::vector<PageId>* out) const;

  /// Structural checks: heap order on y between node and children, x-range
  /// nesting, point counts. Requires full quiescence.
  Status CheckInvariants() const;

  /// Counts pages used (O(n/B) I/Os).
  Result<uint64_t> CountPages() const;

  /// Diverts the amortized rebuild trigger to `hook` (e.g. a maintenance
  /// thread running the split-phase rebuild) instead of rebuilding inline
  /// on the updating thread. The hook fires at most once until the next
  /// CommitGlobalRebuild/AbandonGlobalRebuild releases the pending latch.
  /// Set before concurrent use.
  void SetRebuildHook(std::function<void()> hook) {
    rebuild_hook_ = std::move(hook);
  }

  /// A split-phase global rebuild in flight: the replacement tree is
  /// built and durable, the old tree is still serving.
  struct PendingRebuild {
    PageId fresh_root = kInvalidPageId;
    std::vector<PageId> fresh_pages;  // complete page set of the new tree
    std::vector<PageId> old_pages;    // pages of the tree as harvested
    uint64_t stamp = 0;               // scheduler stamp at harvest
  };

  /// Phase 1 of a background rebuild: harvest under the write latches
  /// (brief, O(n/B) reads), then build the replacement latch-free.
  /// Needs no gate epoch — the latched harvest is coherent under
  /// concurrent queries and update epochs, and any update that lands
  /// after it bumps the stamp and voids the commit. The caller must
  /// pass the result to CommitGlobalRebuild or AbandonGlobalRebuild.
  Result<PendingRebuild> PrepareGlobalRebuild();

  /// Phase 2: install the prepared rebuild. Returns true iff it
  /// committed; if any update landed since the harvest (stamp mismatch)
  /// the pending pages are freed instead and the tree is untouched.
  /// Either way the rebuild-pending latch is released.
  bool CommitGlobalRebuild(PendingRebuild&& p);

  /// Discards a prepared rebuild: frees its pages by id (no device
  /// reads) and releases the rebuild-pending latch.
  void AbandonGlobalRebuild(PendingRebuild&& p);

 private:
  ExternalPst(Pager* pager, PageId root)
      : pager_(pager), root_(root), sy_(std::make_unique<Sync>()) {}

  // Node page layout:
  //   [u32 count][u32 pad][u64 left][u64 right]
  //   [coord sub_xlo][coord sub_xhi][coord min_y]
  //   [count * Point]   (descending y)
  struct NodeHeader {
    uint32_t count;
    uint32_t pad;
    uint64_t left;
    uint64_t right;
    Coord sub_xlo;
    Coord sub_xhi;
    Coord min_y;  // min y among the node's own points
  };

  static constexpr size_t kStripes = 16;

  // Write-epoch latches and the authoritative root image (see file
  // comment), boxed so the tree stays movable.
  struct Sync {
    std::shared_mutex side[2];              // root subtrees (0 = L, 1 = R)
    std::mutex root_mu;                     // root image + root page writes
    std::array<std::mutex, kStripes> stripes;  // per-node delete latches
    std::atomic<uint64_t> size{0};
    std::atomic<bool> rebuild_pending{false};
    // Root image, guarded by root_mu: authoritative once loaded (the disk
    // root only lags it while an insert's displacement is in flight).
    bool image_loaded = false;
    NodeHeader root_h{};
    std::vector<Point> root_pts;
  };

  uint32_t NodeCapacity() const;
  uint32_t MaxDepth() const;

  static Result<PageId> BuildNode(Pager* pager, PointGroup group,
                                  uint32_t cap);
  Status LoadNode(PageId id, NodeHeader* h, std::vector<Point>* pts) const;
  Status StoreNode(PageId id, NodeHeader& h,
                   const std::vector<Point>& pts) const;

  // Root-image helpers; all require root_mu.
  Status LoadImageLocked();
  Status StoreRootLocked();
  void RefreshRootMetaLocked();
  Status CreateRootLocked(const Point& p);
  bool TryAbsorbRootLocked(const Point& p, uint32_t cap, Status* st);
  Result<int> ChooseSideLocked(const Point& p) const;
  void UndoRootDisplaceLocked(const Point& p, const Point& carried,
                              bool displaced);

  // Plans and writes the shadow path of `carried` through the subtree
  // rooted at `start` (kInvalidPageId: a fresh leaf). Caller holds the
  // owning side latch exclusively. On success *top is the new subtree
  // root, *shadow the new (committed) pages, *old_path the replaced
  // pages — freed by the caller under root_mu after the root commits.
  Status BuildShadowSubtree(PageId start, Point carried, uint32_t cap,
                            PageId* top, size_t* depth,
                            std::vector<PageId>* shadow,
                            std::vector<PageId>* old_path);

  Status QueryNode(PageId id, const ThreeSidedQuery& q,
                   SinkEmitter<Point>& em) const;
  Status FreeNode(PageId id);
  // One read-only walk gathering every stored point and/or page id (the
  // fail-safe first half of a fault-atomic global rebuild). Requires
  // write quiescence (all latches, or a quiescent epoch).
  Status Harvest(std::vector<Point>* pts, std::vector<PageId>* pages) const;
  // Inline rebuild paths: TriggerRebuild diverts to the hook when set,
  // else takes every latch and runs GlobalRebuildLocked (re-checking the
  // trigger unless `force`, so concurrent triggers collapse to one).
  Status TriggerRebuild(bool force);
  Status GlobalRebuild();
  Status GlobalRebuildLocked();
  Status DeleteNode(PageId id, const Point& p, bool* found);
  Status CheckNode(PageId id, Coord parent_min_y, bool is_root,
                   bool allow_underfull, uint64_t* count) const;
  Result<uint64_t> CountNode(PageId id) const;

  Pager* pager_;
  PageId root_;
  RebuildScheduler sched_;
  std::unique_ptr<Sync> sy_;
  std::function<void()> rebuild_hook_;
};

}  // namespace ccidx

#endif  // CCIDX_PST_EXTERNAL_PST_H_
