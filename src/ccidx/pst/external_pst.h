// ExternalPst: a blocked external-memory priority search tree (Lemma 4.1,
// after Icking–Klein–Ottmann [17]).
//
// A binary tree over the x-sorted point set in which every node occupies
// one page and stores the ~B points with the largest y values among the
// points of its subtree range (a B-blocked analogue of McCreight's priority
// search tree). Answers 3-sided queries [xlo, xhi] x [ylo, +inf) in
// O(log2 n + t/B) I/Os using O(n/B) pages, and is buildable in
// O((n/B) log_B n) I/Os.
//
// Note the log2 (not log_B) search term: this is the structure the paper
// cites as the best previous approach — the metablock tree's raison d'être
// is removing that binary-height factor for the diagonal special case.
// Here it serves two roles:
//   * experiment E8's baseline, and
//   * the per-metablock / per-children 3-sided sub-structure of the
//     Section 4 class-indexing tree (where it only ever holds O(B^3)
//     points, so its log2 term is the paper's log2 B additive cost).
//
// Dynamization (DESIGN.md §8): Build-constructed handles support updates.
//   * Insert is a shadow-path PST insertion: the x-routing descent is
//     planned read-only, every node on the path is rewritten as a fresh
//     page under an AllocationScope, and the old path is freed — by page
//     id, no reads — only after the new path commits, so a failed insert
//     leaves the old tree untouched and fault-atomic. O(log2 n) I/Os
//     per insert plus an amortized O((log2 n)/B) global-rebuild charge
//     (the shared RebuildScheduler re-balances after Theta(n) updates or
//     when the routing path outgrows the balance envelope).
//   * Delete locates the point (heap order prunes), erases it in place
//     (one page write — atomic under fault injection), lets the node go
//     under-full, and pays the same amortized rebuild charge.
//     O(log2 n) I/Os amortized.
// Sub-structure handles re-attached with Open() are static views: they
// do not track size and must not be updated.

#ifndef CCIDX_PST_EXTERNAL_PST_H_
#define CCIDX_PST_EXTERNAL_PST_H_

#include <span>
#include <vector>

#include "ccidx/build/point_group.h"
#include "ccidx/build/record_stream.h"
#include "ccidx/core/geometry.h"
#include "ccidx/dynamic/rebuild.h"
#include "ccidx/io/page_builder.h"
#include "ccidx/query/sink.h"

namespace ccidx {

/// Static external priority search tree for 3-sided queries.
///
/// Thread safety (DESIGN.md §7): Query is const and safe to run from any
/// number of threads concurrently over one shared Pager. Build/Free are
/// writes and require external synchronization.
class ExternalPst {
 public:
  /// Builds from an x-sorted group (any planar points; no y >= x
  /// restriction) — the one construction implementation (fault-atomic).
  static Result<ExternalPst> Build(Pager* pager, PointGroup points);

  /// Builds from a stream in any order, sorting externally.
  static Result<ExternalPst> Build(Pager* pager, RecordStream<Point>* points);

  /// In-core wrappers (sort in memory, then build). The PST doubles as
  /// the per-metablock sub-structure of the Section 4 trees, whose
  /// inputs are bounded by O(B^3) — within the model's working memory —
  /// so these paths deliberately skip the external sorter.
  static Result<ExternalPst> Build(Pager* pager, std::span<const Point> points);
  static Result<ExternalPst> Build(Pager* pager, std::vector<Point>&& points);

  /// Re-attaches to a previously built tree by its root page (a static
  /// view: size is not tracked, updates are not supported).
  static ExternalPst Open(Pager* pager, PageId root);

  /// Inserts a point via a shadow path (see file comment): fault-atomic,
  /// O(log2 n) I/Os + amortized O((log2 n)/B) rebuild charge. Writes
  /// external (DESIGN.md §7).
  Status Insert(const Point& p);

  /// Deletes the exact point (x, y, id); sets *found. One in-place page
  /// write after a pruned search; amortized O(log2 n) I/Os.
  Status Delete(const Point& p, bool* found);

  /// Points stored (tracked only on Build-constructed handles).
  uint64_t size() const { return size_; }

  /// Streams all points with xlo <= x <= xhi and y >= ylo into `sink`;
  /// kStop halts the recursion before another node page is pinned.
  /// O(log2 n + t/B) I/Os.
  Status Query(const ThreeSidedQuery& q, ResultSink<Point>* sink) const;

  /// As above, driven by a caller-owned emitter (shared with an enclosing
  /// 3-sided-tree query so kStop propagates across structures).
  Status Query(const ThreeSidedQuery& q, SinkEmitter<Point>& em) const;

  /// Appends all points with xlo <= x <= xhi and y >= ylo to `out`.
  /// O(log2 n + t/B) I/Os.
  Status Query(const ThreeSidedQuery& q, std::vector<Point>* out) const;

  PageId root() const { return root_; }

  /// Frees every page.
  Status Free();

  /// Appends every stored point to `out` (O(n/B) I/Os). Used when a
  /// Lemma 4.4 TD structure is rebuilt.
  Status CollectPoints(std::vector<Point>* out) const;

  /// Appends every page id of the tree to `out` (read-only mirror of
  /// Free; the fail-safe first half of a fault-atomic rebuild).
  Status VisitPages(std::vector<PageId>* out) const;

  /// Structural checks: heap order on y between node and children, x-range
  /// nesting, point counts.
  Status CheckInvariants() const;

  /// Counts pages used (O(n/B) I/Os).
  Result<uint64_t> CountPages() const;

 private:
  ExternalPst(Pager* pager, PageId root) : pager_(pager), root_(root) {}

  // Node page layout:
  //   [u32 count][u32 pad][u64 left][u64 right]
  //   [coord sub_xlo][coord sub_xhi][coord min_y]
  //   [count * Point]   (descending y)
  struct NodeHeader {
    uint32_t count;
    uint32_t pad;
    uint64_t left;
    uint64_t right;
    Coord sub_xlo;
    Coord sub_xhi;
    Coord min_y;  // min y among the node's own points
  };

  uint32_t NodeCapacity() const;
  uint32_t MaxDepth() const;

  static Result<PageId> BuildNode(Pager* pager, PointGroup group,
                                  uint32_t cap);
  Status LoadNode(PageId id, NodeHeader* h, std::vector<Point>* pts) const;
  Status StoreNode(PageId id, NodeHeader& h,
                   const std::vector<Point>& pts) const;

  Status QueryNode(PageId id, const ThreeSidedQuery& q,
                   SinkEmitter<Point>& em) const;
  Status FreeNode(PageId id);
  // One read-only walk gathering every stored point and/or page id (the
  // fail-safe first half of a fault-atomic global rebuild).
  Status Harvest(std::vector<Point>* pts, std::vector<PageId>* pages) const;
  Status GlobalRebuild();
  Status DeleteNode(PageId id, const Point& p, bool* found);
  Status CheckNode(PageId id, Coord parent_min_y, bool is_root,
                   bool allow_underfull, uint64_t* count) const;
  Result<uint64_t> CountNode(PageId id) const;

  Pager* pager_;
  PageId root_;
  uint64_t size_ = 0;
  RebuildScheduler sched_;
};

}  // namespace ccidx

#endif  // CCIDX_PST_EXTERNAL_PST_H_
