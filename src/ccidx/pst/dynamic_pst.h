// DynamicPst: a fully dynamic (insert + delete) external priority search
// tree — the §5 conclusion result.
//
// The paper closes by noting that "using the techniques in this paper to
// dynamize the static structure of [17]" yields dynamic interval indexing
// in O(n/B) pages with query O(log2 n + t/B) and amortized update
// O(log2 n + (log2 n)^2/B). This class realizes that dynamization:
//
//   * Insert descends the x-routing path, placing the new point at the
//     highest node where it fits by y and pushing the displaced minimum
//     down — the classic PST insertion, one page per level.
//   * Delete locates the point (heap order prunes the search), removes it
//     in place, and lets nodes go under-full.
//   * Balance and fullness are restored by amortized partial rebuilds in
//     the spirit of the paper's level-II reorganizations: every node
//     tracks its subtree weight, and when a child outweighs the
//     scapegoat fraction of its parent (or the shared RebuildScheduler's
//     accumulated updates reach half the weight — the same policy every
//     dynamized family uses, DESIGN.md §8), the subtree is rebuilt as a
//     perfectly balanced static PST. Each rebuild costs O(w/B +
//     w-in-core) for weight w and is paid for by the Omega(w) updates
//     since the subtree was last built, the same accounting as Lemma 3.6.
//
// Space O(n/B); query O(log2 n + t/B) (Lemma 4.1 plus the balance bound);
// amortized update O(log2 n + (log2 n)^2/B).

#ifndef CCIDX_PST_DYNAMIC_PST_H_
#define CCIDX_PST_DYNAMIC_PST_H_

#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "ccidx/build/point_group.h"
#include "ccidx/build/record_stream.h"
#include "ccidx/core/geometry.h"
#include "ccidx/dynamic/rebuild.h"
#include "ccidx/io/page_builder.h"
#include "ccidx/query/sink.h"

namespace ccidx {

/// Fully dynamic external priority search tree (§5 dynamization of [17]).
///
/// Thread safety (DESIGN.md §7/§11): Query is const and safe to run from
/// any number of threads concurrently over one shared Pager. Insert/
/// Delete/Destroy serialize on an internal per-structure write latch —
/// N writer threads may call them within a write epoch (progress is
/// one-at-a-time: the displaced-minimum descent and scapegoat rebuilds
/// rewrite pages in place along arbitrary paths, so the structure trades
/// intra-structure write parallelism for simplicity; spread load across
/// structures or prefer ExternalPst's side-latched inserts when write
/// scaling matters). Build/CheckInvariants require full quiescence.
class DynamicPst {
 public:
  /// Creates an empty tree.
  explicit DynamicPst(Pager* pager);

  /// Bulk-builds a balanced tree from an x-sorted group — the one
  /// construction implementation (fault-atomic).
  static Result<DynamicPst> Build(Pager* pager, PointGroup points);

  /// Bulk-builds from a stream in any order, sorting externally.
  static Result<DynamicPst> Build(Pager* pager, RecordStream<Point>* points);

  /// In-core wrappers (sort in memory, then build).
  static Result<DynamicPst> Build(Pager* pager, std::span<const Point> points);
  static Result<DynamicPst> Build(Pager* pager, std::vector<Point>&& points);

  /// Inserts a point. Amortized O(log2 n + (log2 n)^2/B) I/Os.
  Status Insert(const Point& p);

  /// Deletes the exact point (x, y, id). Sets *found accordingly.
  /// Amortized O(log2 n + (log2 n)^2/B) I/Os.
  Status Delete(const Point& p, bool* found);

  /// Streams all points with q.xlo <= x <= q.xhi and y >= q.ylo into
  /// `sink`; kStop halts the recursion. O(log2 n + t/B) I/Os.
  Status Query(const ThreeSidedQuery& q, ResultSink<Point>* sink) const;

  /// Appends all points with q.xlo <= x <= q.xhi and y >= q.ylo.
  /// O(log2 n + t/B) I/Os.
  Status Query(const ThreeSidedQuery& q, std::vector<Point>* out) const;

  /// Safe against concurrent Insert/Delete (reads under the write latch).
  uint64_t size() const {
    std::lock_guard<std::mutex> lk(*write_mu_);
    return size_;
  }

  Status Destroy();

  /// Heap order, x-interval sanity, weight counters, balance envelope.
  Status CheckInvariants() const;

 private:
  // Node page layout:
  //   [header][count * Point (descending y)]
  struct NodeHeader {
    uint32_t count;
    uint32_t pad;
    uint64_t left;
    uint64_t right;
    Coord sub_xlo;    // x-range this subtree may contain (grows on insert)
    Coord sub_xhi;
    Coord min_y;      // min y among own points (kCoordMax if empty)
    uint64_t weight;  // points in this subtree
  };

  static constexpr double kAlpha = 0.75;  // scapegoat balance fraction

  uint32_t NodeCapacity() const;
  Status LoadNode(PageId id, NodeHeader* h, std::vector<Point>* pts) const;
  Status StoreNode(PageId id, NodeHeader& h, std::vector<Point>* pts) const;

  static Result<PageId> BuildNode(Pager* pager, PointGroup group,
                                  uint32_t cap);

  Status QueryNode(PageId id, const ThreeSidedQuery& q,
                   SinkEmitter<Point>& em) const;
  Status CollectNode(PageId id, std::vector<Point>* out) const;
  Status FreeNode(PageId id);
  // Rebuilds the subtree at *id as a balanced static tree; updates *id.
  Status RebuildAt(PageId* id);
  Status DeleteNode(PageId id, const Point& p, bool* found);
  Status CheckNode(PageId id, Coord parent_min_y, bool is_root,
                   uint64_t* weight, uint32_t depth,
                   uint32_t max_depth) const;

  Pager* pager_;
  PageId root_;
  uint64_t size_;
  RebuildScheduler sched_;  // shared global-rebuild policy (DESIGN.md §8)
  // Per-structure write latch (boxed so the class stays movable):
  // serializes Insert/Delete/Destroy within a write epoch (DESIGN.md §11).
  std::unique_ptr<std::mutex> write_mu_ = std::make_unique<std::mutex>();
};

}  // namespace ccidx

#endif  // CCIDX_PST_DYNAMIC_PST_H_
