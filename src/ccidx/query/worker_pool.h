// WorkerPool: the fixed thread pool shared by QueryExecutor (read
// batches) and UpdateExecutor (write batches). Construction starts the
// workers; destruction joins them. Run() fans one job across every
// worker and blocks the caller until all return — the pool serves any
// number of jobs sequentially, the jobs parallelize internally.

#ifndef CCIDX_QUERY_WORKER_POOL_H_
#define CCIDX_QUERY_WORKER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ccidx {

class WorkerPool {
 public:
  /// Starts `num_threads` workers (0 => one per hardware thread).
  explicit WorkerPool(unsigned num_threads) {
    if (num_threads == 0) {
      num_threads = std::thread::hardware_concurrency();
      if (num_threads == 0) num_threads = 1;
    }
    workers_.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }

  ~WorkerPool() {
    {
      std::lock_guard lock(mu_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Runs `job(thread)` on every worker and blocks until all return.
  void Run(const std::function<void(unsigned)>& job) {
    std::unique_lock lock(mu_);
    job_ = &job;
    running_ = size();
    generation_++;
    work_cv_.notify_all();
    done_cv_.wait(lock, [this] { return running_ == 0; });
    job_ = nullptr;
  }

 private:
  void WorkerLoop(unsigned thread) {
    uint64_t seen = 0;
    for (;;) {
      const std::function<void(unsigned)>* job;
      {
        std::unique_lock lock(mu_);
        work_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
        if (shutdown_) return;
        seen = generation_;
        job = job_;
      }
      (*job)(thread);
      {
        std::lock_guard lock(mu_);
        if (--running_ == 0) done_cv_.notify_all();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(unsigned)>* job_ = nullptr;  // guarded by mu_
  uint64_t generation_ = 0;
  unsigned running_ = 0;
  bool shutdown_ = false;
};

}  // namespace ccidx

#endif  // CCIDX_QUERY_WORKER_POOL_H_
