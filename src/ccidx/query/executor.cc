#include "ccidx/query/executor.h"

namespace ccidx {

QueryExecutor::QueryExecutor(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

QueryExecutor::~QueryExecutor() {
  {
    std::lock_guard lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void QueryExecutor::RunOnWorkers(const std::function<void(unsigned)>& job) {
  std::unique_lock lock(mu_);
  job_ = &job;
  running_ = num_threads();
  generation_++;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] { return running_ == 0; });
  job_ = nullptr;
}

void QueryExecutor::WorkerLoop(unsigned thread) {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(unsigned)>* job;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      job = job_;
    }
    (*job)(thread);
    {
      std::lock_guard lock(mu_);
      if (--running_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace ccidx
