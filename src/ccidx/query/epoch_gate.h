// EpochGate: the write-preferring, phase-fair epoch gate guarding the
// read/write phases of the engine (DESIGN.md §11).
//
// The gate replaces the reader-preference `std::shared_mutex` quiesce
// point: under saturated batch traffic a shared_mutex writer can starve
// unboundedly (glibc's pthread rwlock admits new readers while a writer
// waits). This gate is starvation-free in both directions by
// construction:
//
//   - Writers take FIFO tickets. The moment any writer is queued, newly
//     arriving reader batches stop being admitted (write preference), so
//     the in-flight readers drain and the head writer runs after a
//     bounded number of reader exits.
//   - On writer exit the gate is phase-fair: every reader that queued
//     while writers held the gate is admitted as one batch *before* the
//     next queued writer runs. Under sustained two-sided contention the
//     gate therefore alternates write → read-batch → write …, bounding
//     every waiter by one phase of the other side.
//
// Timed/try write acquisition is supported by ticket cancellation: a
// timed-out writer marks its ticket cancelled and the serving cursor
// skips it, so abandoned tickets never wedge the queue.
//
// The gate keeps separate contended/uncontended acquisition counts per
// side and log2-bucketed wait histograms (reader and writer), which feed
// `BatchReport::gate_wait` and the bench_update writer p50/p99 series.
// All statistics are relaxed atomics: they are diagnostics, never
// synchronization.

#ifndef CCIDX_QUERY_EPOCH_GATE_H_
#define CCIDX_QUERY_EPOCH_GATE_H_

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_set>

namespace ccidx {

/// Log2-bucketed latency histogram (nanoseconds). Bucket i holds waits in
/// [2^i, 2^(i+1)) ns; bucket 0 also absorbs 0-ns (uncontended) waits.
/// Copyable snapshot type; recording is thread-safe (relaxed atomics are
/// read via snapshot()).
struct WaitHistogram {
  static constexpr size_t kBuckets = 48;
  std::array<uint64_t, kBuckets> buckets{};
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t max_ns = 0;

  static size_t BucketOf(uint64_t ns) {
    return ns == 0 ? 0
                   : std::min<size_t>(kBuckets - 1, std::bit_width(ns) - 1);
  }

  /// Approximate p-th percentile (p in [0,100]) as the upper bound of the
  /// bucket holding that rank: 2^(i+1) ns. Zero when empty.
  uint64_t PercentileNs(double p) const {
    if (count == 0) return 0;
    uint64_t rank = static_cast<uint64_t>(p / 100.0 * count);
    if (rank >= count) rank = count - 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
      seen += buckets[i];
      if (seen > rank) return uint64_t{1} << (i + 1);
    }
    return max_ns;
  }

  uint64_t MeanNs() const { return count == 0 ? 0 : total_ns / count; }
};

class EpochGate {
 public:
  EpochGate() = default;
  EpochGate(const EpochGate&) = delete;
  EpochGate& operator=(const EpochGate&) = delete;

  // ---- Reader side (one acquisition per query batch) -----------------

  /// Blocks while a writer is active or queued (write preference), then
  /// joins the current read phase. Returns the time spent waiting.
  std::chrono::nanoseconds EnterRead() {
    std::unique_lock<std::mutex> lk(mu_);
    if (!ReadBlockedLocked()) {
      active_readers_++;
      RecordReaderWait(0);
      return std::chrono::nanoseconds{0};
    }
    auto t0 = std::chrono::steady_clock::now();
    waiting_readers_++;
    const uint64_t my_gen = admit_gen_;
    reader_cv_.wait(lk, [&] { return admit_gen_ != my_gen; });
    // AdmitReadersLocked counted us into active_readers_ already.
    auto waited = std::chrono::steady_clock::now() - t0;
    uint64_t ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(waited).count();
    RecordReaderWait(ns == 0 ? 1 : ns);
    return waited;
  }

  /// Joins the read phase only if no writer is active or queued.
  bool TryEnterRead() {
    std::lock_guard<std::mutex> lk(mu_);
    if (ReadBlockedLocked()) return false;
    active_readers_++;
    RecordReaderWait(0);
    return true;
  }

  void ExitRead() {
    std::unique_lock<std::mutex> lk(mu_);
    if (--active_readers_ == 0 && writers_waiting_ > 0) {
      lk.unlock();
      writer_cv_.notify_all();
    }
  }

  // ---- Writer side (one acquisition per update epoch) ----------------

  /// Queues a FIFO writer ticket and blocks until it is served: all prior
  /// writers done, the phase-fair reader batch (if any) drained. Returns
  /// the time spent waiting.
  std::chrono::nanoseconds EnterWrite() {
    std::unique_lock<std::mutex> lk(mu_);
    const uint64_t ticket = next_ticket_++;
    if (WriteServableLocked(ticket)) {
      writer_active_ = true;
      RecordWriterWait(0);
      return std::chrono::nanoseconds{0};
    }
    auto t0 = std::chrono::steady_clock::now();
    writers_waiting_++;
    writer_cv_.wait(lk, [&] { return WriteServableLocked(ticket); });
    writers_waiting_--;
    writer_active_ = true;
    auto waited = std::chrono::steady_clock::now() - t0;
    uint64_t ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(waited).count();
    RecordWriterWait(ns == 0 ? 1 : ns);
    return waited;
  }

  /// Acquires the write epoch only if it is free right now (no active or
  /// queued writer, no active readers).
  bool TryEnterWrite() {
    std::lock_guard<std::mutex> lk(mu_);
    const uint64_t ticket = next_ticket_;
    if (!WriteServableLocked(ticket)) return false;
    next_ticket_++;
    writer_active_ = true;
    RecordWriterWait(0);
    return true;
  }

  /// EnterWrite with a deadline. On timeout the ticket is cancelled (the
  /// serving cursor skips it) and false is returned; the gate is not
  /// held. On success behaves exactly like EnterWrite.
  bool EnterWriteFor(std::chrono::nanoseconds timeout) {
    std::unique_lock<std::mutex> lk(mu_);
    const uint64_t ticket = next_ticket_++;
    if (WriteServableLocked(ticket)) {
      writer_active_ = true;
      RecordWriterWait(0);
      return true;
    }
    auto t0 = std::chrono::steady_clock::now();
    writers_waiting_++;
    bool ok = writer_cv_.wait_for(lk, timeout,
                                  [&] { return WriteServableLocked(ticket); });
    writers_waiting_--;
    if (!ok) {
      // Abandon the ticket. If it is the serving head, advance past it
      // (and any other cancelled tickets) so the queue never wedges; if
      // the queue emptied, release the blocked readers.
      cancelled_.insert(ticket);
      AdvanceServingLocked();
      bool admit = !writer_active_ && writers_waiting_ == 0 &&
                   serving_ticket_ == next_ticket_;
      if (admit) AdmitReadersLocked();
      lk.unlock();
      writer_cv_.notify_all();
      if (admit) reader_cv_.notify_all();
      return false;
    }
    writer_active_ = true;
    auto waited = std::chrono::steady_clock::now() - t0;
    uint64_t ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(waited).count();
    RecordWriterWait(ns == 0 ? 1 : ns);
    return true;
  }

  /// Releases the write epoch. Phase-fair: readers that queued during the
  /// write phase are admitted as one batch before the next queued writer.
  void ExitWrite() {
    bool admit;
    {
      std::lock_guard<std::mutex> lk(mu_);
      writer_active_ = false;
      serving_ticket_++;
      AdvanceServingLocked();
      admit = waiting_readers_ > 0;
      if (admit) AdmitReadersLocked();
    }
    if (admit) reader_cv_.notify_all();
    writer_cv_.notify_all();
  }

  // ---- Diagnostics ---------------------------------------------------

  /// Acquisitions that proceeded without blocking / that had to wait.
  uint64_t uncontended_reads() const { return r_uncontended_.load(kRlx); }
  uint64_t contended_reads() const { return r_contended_.load(kRlx); }
  uint64_t uncontended_writes() const { return w_uncontended_.load(kRlx); }
  uint64_t contended_writes() const { return w_contended_.load(kRlx); }

  WaitHistogram reader_wait_histogram() const {
    return Snapshot(reader_hist_);
  }
  WaitHistogram writer_wait_histogram() const {
    return Snapshot(writer_hist_);
  }

  /// True while a writer is active or queued — i.e. while EnterRead()
  /// would block. The serving dispatcher uses this as its batch-admission
  /// hook (DESIGN.md §12): instead of parking a reader batch at the gate,
  /// it keeps draining the submission queue into a larger batch and
  /// enters once the write phase ends — the wait it would have paid
  /// becomes batching. Advisory: the answer can be stale by the time the
  /// caller acts on it, which only changes batch sizing, never safety.
  bool write_pending() const {
    std::lock_guard<std::mutex> lk(mu_);
    return ReadBlockedLocked();
  }

 private:
  static constexpr auto kRlx = std::memory_order_relaxed;

  struct AtomicHist {
    std::array<std::atomic<uint64_t>, WaitHistogram::kBuckets> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> total_ns{0};
    std::atomic<uint64_t> max_ns{0};

    void Record(uint64_t ns) {
      buckets[WaitHistogram::BucketOf(ns)].fetch_add(1, kRlx);
      count.fetch_add(1, kRlx);
      total_ns.fetch_add(ns, kRlx);
      uint64_t prev = max_ns.load(kRlx);
      while (prev < ns && !max_ns.compare_exchange_weak(prev, ns, kRlx)) {
      }
    }
  };

  static WaitHistogram Snapshot(const AtomicHist& h) {
    WaitHistogram out;
    for (size_t i = 0; i < WaitHistogram::kBuckets; ++i) {
      out.buckets[i] = h.buckets[i].load(kRlx);
    }
    out.count = h.count.load(kRlx);
    out.total_ns = h.total_ns.load(kRlx);
    out.max_ns = h.max_ns.load(kRlx);
    return out;
  }

  // New readers are held off whenever a writer is active or any ticket is
  // outstanding (write preference).
  bool ReadBlockedLocked() const {
    return writer_active_ || serving_ticket_ != next_ticket_;
  }

  // Ticket `t` may run when it is the serving head, the previous writer
  // has exited, and the admitted reader batch has drained.
  bool WriteServableLocked(uint64_t t) const {
    return serving_ticket_ == t && !writer_active_ && active_readers_ == 0;
  }

  void AdvanceServingLocked() {
    while (!cancelled_.empty() && cancelled_.count(serving_ticket_) != 0) {
      cancelled_.erase(serving_ticket_);
      serving_ticket_++;
    }
  }

  void AdmitReadersLocked() {
    if (waiting_readers_ == 0) return;
    active_readers_ += waiting_readers_;
    waiting_readers_ = 0;
    admit_gen_++;
  }

  void RecordReaderWait(uint64_t ns) {
    (ns == 0 ? r_uncontended_ : r_contended_).fetch_add(1, kRlx);
    reader_hist_.Record(ns);
  }
  void RecordWriterWait(uint64_t ns) {
    (ns == 0 ? w_uncontended_ : w_contended_).fetch_add(1, kRlx);
    writer_hist_.Record(ns);
  }

  mutable std::mutex mu_;
  std::condition_variable reader_cv_;
  std::condition_variable writer_cv_;
  // All state below is guarded by mu_.
  uint64_t active_readers_ = 0;
  uint64_t waiting_readers_ = 0;
  uint64_t admit_gen_ = 0;       // bumped per reader-batch admission
  bool writer_active_ = false;
  uint64_t next_ticket_ = 0;     // next ticket to hand out
  uint64_t serving_ticket_ = 0;  // ticket currently allowed to run
  uint64_t writers_waiting_ = 0;
  std::unordered_set<uint64_t> cancelled_;  // timed-out tickets to skip

  std::atomic<uint64_t> r_uncontended_{0}, r_contended_{0};
  std::atomic<uint64_t> w_uncontended_{0}, w_contended_{0};
  AtomicHist reader_hist_;
  AtomicHist writer_hist_;
};

}  // namespace ccidx

#endif  // CCIDX_QUERY_EPOCH_GATE_H_
