// QueryExecutor: a fixed worker pool that fans a batch of queries across
// threads over one shared structure + pager (DESIGN.md §7).
//
// Every index family's query path is const and thread-safe over a shared
// Pager (reads pin pages; the sharded pool serializes nothing across
// shards), so serving a read batch is embarrassingly parallel: workers
// claim queries from a shared atomic cursor, each query runs against its
// own sink / SinkEmitter (created on the executing worker), and the batch
// report carries per-query statuses, per-thread query counts, and the
// IoStats diff over the whole batch (counters are merged across pager
// shards on read, preserving the `operator-` snapshot semantics).
//
// Writes (Insert/Delete/build) stay externally synchronized against
// queries, and the executor provides the synchronization point: Quiesce()
// returns an RAII guard for an exclusive update epoch — it blocks until
// every in-flight batch drains, holds off new batches, and releases them
// when the guard dies. Batch serving and structure updates compose
// through this epoch-style quiesce without any per-query locking
// (RunBatch takes the epoch lock shared, once per batch).

#ifndef CCIDX_QUERY_EXECUTOR_H_
#define CCIDX_QUERY_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <thread>
#include <vector>

#include "ccidx/common/status.h"
#include "ccidx/io/pager.h"
#include "ccidx/query/sink.h"

namespace ccidx {

/// Outcome of one RunBatch call.
struct BatchReport {
  /// statuses[i] is the Status of queries[i] (order preserved).
  std::vector<Status> statuses;
  /// Pager stats diff across the whole batch (zero unless a pager was
  /// passed to RunBatch). Device reads/writes are the paper's I/O metric.
  IoStats io;
  /// Queries executed by each worker (sums to statuses.size()).
  std::vector<uint64_t> per_thread_queries;

  bool ok() const {
    for (const Status& s : statuses) {
      if (!s.ok()) return false;
    }
    return true;
  }

  /// First non-OK status, or OK.
  Status FirstError() const {
    for (const Status& s : statuses) {
      if (!s.ok()) return s;
    }
    return Status::OK();
  }
};

/// BatchReport plus the per-query sinks created by the sink factory, so
/// callers harvest results (counts, top-k, vectors) after the batch.
template <typename T>
struct SinkBatchReport {
  BatchReport report;
  std::vector<std::unique_ptr<ResultSink<T>>> sinks;

  bool ok() const { return report.ok(); }
};

/// Fixed pool of worker threads serving query batches. Construction starts
/// the workers; destruction joins them. RunBatch blocks the caller until
/// the batch drains. One executor can serve any number of batches (over
/// any structures) sequentially; batches themselves parallelize
/// internally.
class QueryExecutor {
 public:
  /// Starts `num_threads` workers (0 => one per hardware thread).
  explicit QueryExecutor(unsigned num_threads);
  ~QueryExecutor();
  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  unsigned num_threads() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// RAII exclusive update epoch (see file comment). While alive, no
  /// batch runs; batches blocked on the epoch resume when it dies.
  class QuiesceGuard {
   public:
    QuiesceGuard(QuiesceGuard&&) = default;
    QuiesceGuard& operator=(QuiesceGuard&&) = default;

   private:
    friend class QueryExecutor;
    explicit QuiesceGuard(std::shared_mutex* mu) : lock_(*mu) {}
    std::unique_lock<std::shared_mutex> lock_;
  };

  /// Blocks until in-flight batches drain and returns the exclusive
  /// update epoch. Run Insert/Delete/rebuilds while holding the guard;
  /// do not call RunBatch from the same thread while it is alive (the
  /// batch would deadlock on its own epoch).
  QuiesceGuard Quiesce() {
    QuiesceGuard g(&epoch_mu_);
    quiesce_epochs_.fetch_add(1, std::memory_order_relaxed);
    return g;
  }

  /// Update epochs begun so far (diagnostics for tests/benches).
  uint64_t quiesce_epochs() const {
    return quiesce_epochs_.load(std::memory_order_relaxed);
  }

  /// Batch warm-up (DESIGN.md §10): stages `roots` — the entry pages of
  /// the structures an imminent batch will query — as one concurrent
  /// device round, so a cold pool under a latency-injecting or file-backed
  /// device does not pay one dependent read per root on first touch.
  /// Strict no-op in cost-model mode (speculation budget zero), keeping
  /// counted batch I/Os identical there.
  static void Warmup(Pager* pager, std::span<const PageId> roots) {
    if (pager == nullptr || pager->speculation_budget() == 0) return;
    std::vector<PageId> ids;
    ids.reserve(roots.size());
    for (PageId id : roots) {
      if (id != kInvalidPageId) ids.push_back(id);
    }
    if (!ids.empty()) pager->WarmMany(ids);
  }

  /// Fans `queries` across the workers. `runner` is invoked as
  ///   Status runner(const Query& q, size_t query_index, unsigned thread)
  /// concurrently from the workers; it must only perform const/thread-safe
  /// operations (queries over pins). When `pager` is non-null the report
  /// carries the batch's IoStats diff.
  template <typename Query, typename Runner>
  BatchReport RunBatch(std::span<const Query> queries, Runner&& runner,
                       Pager* pager = nullptr) {
    // One shared epoch acquisition per batch: batches run concurrently
    // with each other, and an updater holding Quiesce() excludes them.
    std::shared_lock<std::shared_mutex> epoch(epoch_mu_);
    BatchReport report;
    report.statuses.assign(queries.size(), Status::OK());
    report.per_thread_queries.assign(num_threads(), 0);
    IoStats before = pager != nullptr ? pager->CombinedStats() : IoStats{};
    std::atomic<size_t> next{0};
    RunOnWorkers([&](unsigned thread) {
      // Count locally and store once: adjacent per_thread_queries slots
      // share cache lines, and an increment per claimed query would
      // ping-pong that line across every worker.
      uint64_t ran = 0;
      for (size_t i;
           (i = next.fetch_add(1, std::memory_order_relaxed)) <
           queries.size();) {
        report.statuses[i] = runner(queries[i], i, thread);
        ran++;
      }
      report.per_thread_queries[thread] = ran;
    });
    if (pager != nullptr) report.io = pager->CombinedStats() - before;
    return report;
  }

  /// Sink-based convenience: `sink_factory(i)` builds the sink for
  /// queries[i] (any unique_ptr to a ResultSink<T> subclass); `runner` is
  ///   Status runner(const Query& q, ResultSink<T>* sink)
  /// — exactly the signature of every family's sink query entry point, so
  /// a runner is usually a one-line lambda. Each query drives its own
  /// sink (and the per-query SinkEmitter the family builds over it) on
  /// the executing worker. Returns the sinks for harvesting. Call as
  /// `exec.RunBatch<T>(queries, factory, runner)`.
  template <typename T, typename Query, typename SinkFactory,
            typename Runner>
  SinkBatchReport<T> RunBatch(std::span<const Query> queries,
                              SinkFactory&& sink_factory, Runner&& runner,
                              Pager* pager = nullptr) {
    SinkBatchReport<T> out;
    out.sinks.reserve(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      out.sinks.push_back(sink_factory(i));
    }
    out.report = RunBatch(
        queries,
        [&](const Query& q, size_t index, unsigned) {
          return runner(q, out.sinks[index].get());
        },
        pager);
    return out;
  }

 private:
  // Runs `job(thread)` on every worker and blocks until all return.
  void RunOnWorkers(const std::function<void(unsigned)>& job);
  void WorkerLoop(unsigned thread);

  std::vector<std::thread> workers_;
  // Epoch-style quiesce point: batches shared, updates exclusive.
  mutable std::shared_mutex epoch_mu_;
  std::atomic<uint64_t> quiesce_epochs_{0};
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(unsigned)>* job_ = nullptr;  // guarded by mu_
  uint64_t generation_ = 0;
  unsigned running_ = 0;
  bool shutdown_ = false;
};

}  // namespace ccidx

#endif  // CCIDX_QUERY_EXECUTOR_H_
