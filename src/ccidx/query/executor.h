// QueryExecutor: a fixed worker pool that fans a batch of queries across
// threads over one shared structure + pager (DESIGN.md §7).
//
// Every index family's query path is const and thread-safe over a shared
// Pager (reads pin pages; the sharded pool serializes nothing across
// shards), so serving a read batch is embarrassingly parallel: workers
// claim queries from a shared atomic cursor, each query runs against its
// own sink / SinkEmitter (created on the executing worker), and the batch
// report carries per-query statuses, per-thread query counts, and the
// IoStats diff over the whole batch (counters are merged across pager
// shards on read, preserving the `operator-` snapshot semantics).
//
// Reads stay gated against structure mutation, and the executor provides
// the synchronization point: Quiesce() returns an RAII guard for an
// exclusive update epoch — it blocks until every in-flight batch drains,
// holds off new batches, and releases them when the guard dies. The
// epoch is a write-preferring, phase-fair EpochGate (DESIGN.md §11):
// arriving writers stop admitting new reader batches, and on writer exit
// the queued reader batches run before the next writer, so neither side
// can starve. Within a write epoch, updates themselves parallelize
// through the families' internal latches (see UpdateExecutor). RunBatch
// enters the gate once per batch and reports the wait it paid in
// BatchReport::gate_wait.

#ifndef CCIDX_QUERY_EXECUTOR_H_
#define CCIDX_QUERY_EXECUTOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "ccidx/common/status.h"
#include "ccidx/io/pager.h"
#include "ccidx/query/epoch_gate.h"
#include "ccidx/query/sink.h"
#include "ccidx/query/worker_pool.h"

namespace ccidx {

/// Outcome of one RunBatch call.
struct BatchReport {
  /// statuses[i] is the Status of queries[i] (order preserved).
  std::vector<Status> statuses;
  /// Pager stats diff across the whole batch (zero unless a pager was
  /// passed to RunBatch). Device reads/writes are the paper's I/O metric.
  IoStats io;
  /// Queries executed by each worker (sums to statuses.size()).
  std::vector<uint64_t> per_thread_queries;
  /// Time this batch waited at the epoch gate before running (zero when
  /// no writer was active or queued at entry).
  std::chrono::nanoseconds gate_wait{0};
  /// Cumulative reader-side gate-wait histogram at batch completion
  /// (log2 ns buckets; covers every batch served through this executor).
  WaitHistogram gate_wait_hist;

  bool ok() const {
    for (const Status& s : statuses) {
      if (!s.ok()) return false;
    }
    return true;
  }

  /// First non-OK status, or OK.
  Status FirstError() const {
    for (const Status& s : statuses) {
      if (!s.ok()) return s;
    }
    return Status::OK();
  }
};

/// BatchReport plus the per-query sinks created by the sink factory, so
/// callers harvest results (counts, top-k, vectors) after the batch.
template <typename T>
struct SinkBatchReport {
  BatchReport report;
  std::vector<std::unique_ptr<ResultSink<T>>> sinks;

  bool ok() const { return report.ok(); }
};

/// Fixed pool of worker threads serving query batches. Construction starts
/// the workers; destruction joins them. RunBatch blocks the caller until
/// the batch drains. One executor can serve any number of batches (over
/// any structures) sequentially; batches themselves parallelize
/// internally.
class QueryExecutor {
 public:
  /// Starts `num_threads` workers (0 => one per hardware thread).
  explicit QueryExecutor(unsigned num_threads) : pool_(num_threads) {}
  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  unsigned num_threads() const { return pool_.size(); }

  /// RAII exclusive update epoch (see file comment). While alive, no
  /// batch runs; batches blocked on the epoch resume when it dies.
  class QuiesceGuard {
   public:
    QuiesceGuard(QuiesceGuard&& o) noexcept
        : gate_(o.gate_), wait_(o.wait_) {
      o.gate_ = nullptr;
    }
    QuiesceGuard& operator=(QuiesceGuard&& o) noexcept {
      if (this != &o) {
        Release();
        gate_ = o.gate_;
        wait_ = o.wait_;
        o.gate_ = nullptr;
      }
      return *this;
    }
    ~QuiesceGuard() { Release(); }

    /// Time this epoch waited at the gate before acquisition.
    std::chrono::nanoseconds gate_wait() const { return wait_; }

   private:
    friend class QueryExecutor;
    QuiesceGuard(EpochGate* gate, std::chrono::nanoseconds wait)
        : gate_(gate), wait_(wait) {}
    void Release() {
      if (gate_ != nullptr) gate_->ExitWrite();
      gate_ = nullptr;
    }
    EpochGate* gate_ = nullptr;
    std::chrono::nanoseconds wait_{0};
  };

  /// Blocks until in-flight batches drain and returns the exclusive
  /// update epoch (FIFO among writers; see EpochGate). Run
  /// Insert/Delete/rebuilds while holding the guard; do not call
  /// RunBatch from the same thread while it is alive (the batch would
  /// deadlock on its own epoch).
  QuiesceGuard Quiesce() {
    auto wait = gate_.EnterWrite();
    quiesce_epochs_.fetch_add(1, std::memory_order_relaxed);
    return QuiesceGuard(&gate_, wait);
  }

  /// Quiesce only if the epoch is immediately free (no queued writer, no
  /// in-flight batch). Never blocks.
  std::optional<QuiesceGuard> TryQuiesce() {
    if (!gate_.TryEnterWrite()) return std::nullopt;
    quiesce_epochs_.fetch_add(1, std::memory_order_relaxed);
    return QuiesceGuard(&gate_, std::chrono::nanoseconds{0});
  }

  /// Quiesce with a deadline: gives up (and cancels its writer ticket)
  /// if the epoch cannot be acquired within `timeout`.
  std::optional<QuiesceGuard> QuiesceFor(std::chrono::nanoseconds timeout) {
    if (!gate_.EnterWriteFor(timeout)) return std::nullopt;
    quiesce_epochs_.fetch_add(1, std::memory_order_relaxed);
    return QuiesceGuard(&gate_, timeout);  // upper bound; histogram is exact
  }

  /// Update epochs begun so far (diagnostics for tests/benches).
  uint64_t quiesce_epochs() const {
    return quiesce_epochs_.load(std::memory_order_relaxed);
  }
  /// Update epochs that had to wait at the gate / that acquired it
  /// immediately. quiesce_epochs() == contended + uncontended.
  uint64_t contended_quiesce_epochs() const {
    return gate_.contended_writes();
  }
  uint64_t uncontended_quiesce_epochs() const {
    return gate_.uncontended_writes();
  }

  /// The epoch gate itself: UpdateExecutor and MaintenanceThread
  /// coordinate with serving through it.
  EpochGate* gate() { return &gate_; }

  /// Batch-admission hook for the serving dispatcher (DESIGN.md §12):
  /// true while RunBatch would block at the gate behind an active or
  /// queued writer. The dispatcher then keeps forming a larger batch
  /// instead of parking a thread at the gate. Advisory (may be stale by
  /// the time the caller dispatches); affects batch sizing only.
  bool gate_busy() const { return gate_.write_pending(); }

  /// Cumulative reader-side gate-wait histogram across every batch this
  /// executor has served — the gate-wait export the serving stats and
  /// load driver fold into their tail-latency lines.
  WaitHistogram reader_gate_wait_histogram() const {
    return gate_.reader_wait_histogram();
  }

  /// Batch warm-up (DESIGN.md §10): stages `roots` — the entry pages of
  /// the structures an imminent batch will query — as one concurrent
  /// device round, so a cold pool under a latency-injecting or file-backed
  /// device does not pay one dependent read per root on first touch.
  /// Strict no-op in cost-model mode (speculation budget zero), keeping
  /// counted batch I/Os identical there.
  static void Warmup(Pager* pager, std::span<const PageId> roots) {
    if (pager == nullptr || pager->speculation_budget() == 0) return;
    std::vector<PageId> ids;
    ids.reserve(roots.size());
    for (PageId id : roots) {
      if (id != kInvalidPageId) ids.push_back(id);
    }
    if (!ids.empty()) pager->WarmMany(ids);
  }

  /// Fans `queries` across the workers. `runner` is invoked as
  ///   Status runner(const Query& q, size_t query_index, unsigned thread)
  /// concurrently from the workers; it must only perform const/thread-safe
  /// operations (queries over pins). When `pager` is non-null the report
  /// carries the batch's IoStats diff.
  template <typename Query, typename Runner>
  BatchReport RunBatch(std::span<const Query> queries, Runner&& runner,
                       Pager* pager = nullptr) {
    // One gate entry per batch: batches run concurrently with each
    // other, and an updater holding Quiesce() excludes them. The gate is
    // write-preferring, so a saturated batch stream cannot starve
    // updates (and phase-fair, so updates cannot starve batches).
    struct ReadEpoch {
      EpochGate* g;
      std::chrono::nanoseconds wait;
      explicit ReadEpoch(EpochGate* gate) : g(gate), wait(g->EnterRead()) {}
      ~ReadEpoch() { g->ExitRead(); }
    } epoch(&gate_);
    BatchReport report;
    report.gate_wait = epoch.wait;
    report.statuses.assign(queries.size(), Status::OK());
    report.per_thread_queries.assign(num_threads(), 0);
    IoStats before = pager != nullptr ? pager->CombinedStats() : IoStats{};
    std::atomic<size_t> next{0};
    RunOnWorkers([&](unsigned thread) {
      // Count locally and store once: adjacent per_thread_queries slots
      // share cache lines, and an increment per claimed query would
      // ping-pong that line across every worker.
      uint64_t ran = 0;
      for (size_t i;
           (i = next.fetch_add(1, std::memory_order_relaxed)) <
           queries.size();) {
        report.statuses[i] = runner(queries[i], i, thread);
        ran++;
      }
      report.per_thread_queries[thread] = ran;
    });
    if (pager != nullptr) report.io = pager->CombinedStats() - before;
    report.gate_wait_hist = gate_.reader_wait_histogram();
    return report;
  }

  /// Sink-based convenience: `sink_factory(i)` builds the sink for
  /// queries[i] (any unique_ptr to a ResultSink<T> subclass); `runner` is
  ///   Status runner(const Query& q, ResultSink<T>* sink)
  /// — exactly the signature of every family's sink query entry point, so
  /// a runner is usually a one-line lambda. Each query drives its own
  /// sink (and the per-query SinkEmitter the family builds over it) on
  /// the executing worker. Returns the sinks for harvesting. Call as
  /// `exec.RunBatch<T>(queries, factory, runner)`.
  template <typename T, typename Query, typename SinkFactory,
            typename Runner>
  SinkBatchReport<T> RunBatch(std::span<const Query> queries,
                              SinkFactory&& sink_factory, Runner&& runner,
                              Pager* pager = nullptr) {
    SinkBatchReport<T> out;
    out.sinks.reserve(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      out.sinks.push_back(sink_factory(i));
    }
    out.report = RunBatch(
        queries,
        [&](const Query& q, size_t index, unsigned) {
          return runner(q, out.sinks[index].get());
        },
        pager);
    return out;
  }

 private:
  // Runs `job(thread)` on every worker and blocks until all return.
  void RunOnWorkers(const std::function<void(unsigned)>& job) {
    pool_.Run(job);
  }

  WorkerPool pool_;
  // Epoch-style quiesce point: batches enter as readers, updates as
  // FIFO writers (write-preferring + phase-fair; see epoch_gate.h).
  EpochGate gate_;
  std::atomic<uint64_t> quiesce_epochs_{0};
};

}  // namespace ccidx

#endif  // CCIDX_QUERY_EXECUTOR_H_
