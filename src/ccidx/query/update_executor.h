// UpdateExecutor: fans a mixed batch of updates across N writer threads
// inside one write epoch (DESIGN.md §11).
//
// The epoch gate admits one write epoch at a time (vs. the reader
// batches); *within* the epoch the index families are safe for N
// concurrent writers through their internal latches (Bentley–Saxe level
// latches, B+-tree subtree stripes, PST side latches, the sharded
// tombstone set). The executor supplies the missing piece — an
// assignment of updates to workers that preserves per-key ordering:
// worker w applies exactly the updates whose mixed key hash lands on w.
// One sequential pass over the batch (before the gate is even entered,
// so partitioning never lengthens the write epoch) hashes each key once
// and builds the per-worker index lists in batch order — so two updates
// to the same key are always applied by the same worker in batch order,
// while different keys spread across all workers. No cross-thread
// handoff, no queues: each worker walks only its own list.
//
// RunUpdates optionally takes the EpochGate: when given, the batch
// enters the gate as one writer (FIFO ticket, write-preferring — see
// epoch_gate.h) and the report carries the gate wait it paid plus the
// cumulative writer-side wait histogram, which bench_update turns into
// the gate-wait p50/p99 series.

#ifndef CCIDX_QUERY_UPDATE_EXECUTOR_H_
#define CCIDX_QUERY_UPDATE_EXECUTOR_H_

#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

#include "ccidx/common/status.h"
#include "ccidx/io/pager.h"
#include "ccidx/query/epoch_gate.h"
#include "ccidx/query/worker_pool.h"

namespace ccidx {

/// Outcome of one RunUpdates call.
struct UpdateReport {
  /// statuses[i] is the Status of updates[i] (order preserved).
  std::vector<Status> statuses;
  /// Updates applied by each worker (sums to statuses.size()).
  std::vector<uint64_t> per_thread_updates;
  /// Pager stats diff across the batch (zero unless a pager was passed).
  IoStats io;
  /// Time this batch waited at the epoch gate before its write epoch
  /// began (zero when no gate was passed or the gate was free).
  std::chrono::nanoseconds gate_wait{0};
  /// Cumulative writer-side gate-wait histogram at batch completion.
  WaitHistogram gate_wait_hist;

  bool ok() const {
    for (const Status& s : statuses) {
      if (!s.ok()) return false;
    }
    return true;
  }

  /// First non-OK status, or OK.
  Status FirstError() const {
    for (const Status& s : statuses) {
      if (!s.ok()) return s;
    }
    return Status::OK();
  }
};

/// Fixed pool of writer threads serving update batches. Construction
/// starts the workers; destruction joins them. RunUpdates blocks the
/// caller until the batch drains.
class UpdateExecutor {
 public:
  /// Starts `num_threads` writers (0 => one per hardware thread).
  explicit UpdateExecutor(unsigned num_threads) : pool_(num_threads) {}
  UpdateExecutor(const UpdateExecutor&) = delete;
  UpdateExecutor& operator=(const UpdateExecutor&) = delete;

  unsigned num_threads() const { return pool_.size(); }

  /// Fans `updates` across the writers. `key_of` maps an update to its
  /// ordering key (updates with equal keys are applied in batch order by
  /// one worker); `apply` is invoked as
  ///   Status apply(const Update& u, size_t index, unsigned thread)
  /// concurrently from the workers and must only call write paths that
  /// are N-writer safe within an epoch (Insert/Delete of the latched
  /// families). When `gate` is non-null the whole batch runs as one
  /// write epoch; when `pager` is non-null the report carries the
  /// batch's IoStats diff.
  template <typename Update, typename KeyOf, typename Applier>
  UpdateReport RunUpdates(std::span<const Update> updates, KeyOf&& key_of,
                          Applier&& apply, EpochGate* gate = nullptr,
                          Pager* pager = nullptr) {
    UpdateReport report;
    report.statuses.assign(updates.size(), Status::OK());
    report.per_thread_updates.assign(num_threads(), 0);
    // Partition before entering the gate: one pass, one hash per key,
    // per-worker index lists in batch order (per-key ordering).
    const unsigned width = num_threads();
    std::vector<std::vector<size_t>> assigned(width);
    for (auto& list : assigned) list.reserve(updates.size() / width + 1);
    for (size_t i = 0; i < updates.size(); ++i) {
      assigned[Mix(static_cast<uint64_t>(key_of(updates[i]))) % width]
          .push_back(i);
    }
    if (gate != nullptr) report.gate_wait = gate->EnterWrite();
    IoStats before = pager != nullptr ? pager->CombinedStats() : IoStats{};
    pool_.Run([&](unsigned thread) {
      for (size_t i : assigned[thread]) {
        report.statuses[i] = apply(updates[i], i, thread);
      }
      report.per_thread_updates[thread] = assigned[thread].size();
    });
    if (pager != nullptr) report.io = pager->CombinedStats() - before;
    if (gate != nullptr) {
      report.gate_wait_hist = gate->writer_wait_histogram();
      gate->ExitWrite();
    }
    return report;
  }

 private:
  // splitmix64 finalizer: sequential keys must not all land on one
  // worker, so the partition uses a mixed hash, not the raw key.
  static uint64_t Mix(uint64_t k) {
    k += 0x9e3779b97f4a7c15ull;
    k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9ull;
    k = (k ^ (k >> 27)) * 0x94d049bb133111ebull;
    return k ^ (k >> 31);
  }

  WorkerPool pool_;
};

}  // namespace ccidx

#endif  // CCIDX_QUERY_UPDATE_EXECUTOR_H_
