// ResultSink: the streaming query-execution interface (DESIGN.md §5).
//
// The paper's query bound O(log_B n + t/B) charges I/Os to blocks of
// *output*, yet a consumer that needs only a count, an existence bit, or
// the first k results should not pay the full t/B term — nor a heap copy
// per record. Every index family's reporting path therefore emits results
// block-at-a-time into a ResultSink: wherever the on-page order admits it
// the emitted span aliases the pinned buffer-pool frame directly (the
// PostgreSQL index-AM pattern of streaming tuples out of pinned pages),
// and a kStop return propagates up the query recursion, halting descent
// before any further page is pinned.
//
// Contract:
//   * Emit receives only non-empty batches (SinkEmitter filters empties).
//   * A span passed to Emit is valid only for the duration of the call —
//     it may alias a pinned page that is released immediately after.
//   * Emit after a previous kStop is permitted and must keep returning
//     kStop without side effects (adapters may be shared across several
//     underlying scans).

#ifndef CCIDX_QUERY_SINK_H_
#define CCIDX_QUERY_SINK_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

namespace ccidx {

/// Flow-control verdict a sink returns per emitted block.
enum class SinkState {
  kContinue,  ///< keep producing
  kStop,      ///< early termination: stop descending, pin no further pages
};

/// Consumer of query results, fed block-at-a-time.
template <typename T>
class ResultSink {
 public:
  virtual ~ResultSink() = default;

  /// Consumes one block of results. The span is only valid during the
  /// call. Returning kStop halts the producing query.
  virtual SinkState Emit(std::span<const T> batch) = 0;
};

/// Appends every result to a vector — the historical materializing
/// behavior. The `std::vector* out` query overloads are one-line wrappers
/// over this sink.
template <typename T>
class VectorSink final : public ResultSink<T> {
 public:
  explicit VectorSink(std::vector<T>* out) : out_(out) {}

  SinkState Emit(std::span<const T> batch) override {
    out_->insert(out_->end(), batch.begin(), batch.end());
    return SinkState::kContinue;
  }

 private:
  std::vector<T>* out_;
};

/// Counts results without storing them. SELECT COUNT(*): still pays t/B
/// I/Os (every output block is read) but no per-record heap traffic.
template <typename T>
class CountSink final : public ResultSink<T> {
 public:
  SinkState Emit(std::span<const T> batch) override {
    count_ += batch.size();
    return SinkState::kContinue;
  }

  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

/// Stops at the first result. EXISTS: O(log_B n) I/Os — the t/B term
/// vanishes entirely.
template <typename T>
class ExistsSink final : public ResultSink<T> {
 public:
  SinkState Emit(std::span<const T> batch) override {
    (void)batch;  // non-empty by contract
    exists_ = true;
    return SinkState::kStop;
  }

  bool exists() const { return exists_; }

 private:
  bool exists_ = false;
};

/// Keeps the first k results, then stops. Top-k / first-page workloads:
/// O(log_B n + k/B) I/Os regardless of the full result size t.
template <typename T>
class LimitSink final : public ResultSink<T> {
 public:
  explicit LimitSink(size_t k) : k_(k) {}

  SinkState Emit(std::span<const T> batch) override {
    if (results_.size() >= k_) return SinkState::kStop;
    size_t take = std::min(batch.size(), k_ - results_.size());
    results_.insert(results_.end(), batch.begin(), batch.begin() + take);
    return results_.size() >= k_ ? SinkState::kStop : SinkState::kContinue;
  }

  const std::vector<T>& results() const { return results_; }

 private:
  size_t k_;
  std::vector<T> results_;
};

/// Wraps an arbitrary per-block callable as a sink.
template <typename T>
class FunctionSink final : public ResultSink<T> {
 public:
  using Fn = std::function<SinkState(std::span<const T>)>;
  explicit FunctionSink(Fn fn) : fn_(std::move(fn)) {}

  SinkState Emit(std::span<const T> batch) override { return fn_(batch); }

 private:
  Fn fn_;
};

/// Adapter mapping each In record through `fn` (nullopt drops the record)
/// and forwarding the staged block to an Out sink. Used where a structure
/// reports one record type and the public API another (Point -> Interval,
/// BtEntry -> object id). Remembers the inner verdict so a caller driving
/// several scans through one adapter can short-circuit via stopped().
template <typename In, typename Out>
class TransformSink final : public ResultSink<In> {
 public:
  using Fn = std::function<std::optional<Out>(const In&)>;
  TransformSink(ResultSink<Out>* inner, Fn fn)
      : inner_(inner), fn_(std::move(fn)) {}

  SinkState Emit(std::span<const In> batch) override {
    if (state_ == SinkState::kStop) return state_;
    scratch_.clear();
    for (const In& v : batch) {
      if (std::optional<Out> o = fn_(v)) scratch_.push_back(std::move(*o));
    }
    if (!scratch_.empty()) state_ = inner_->Emit(scratch_);
    return state_;
  }

  bool stopped() const { return state_ == SinkState::kStop; }

 private:
  ResultSink<Out>* inner_;
  Fn fn_;
  std::vector<Out> scratch_;
  SinkState state_ = SinkState::kContinue;
};

/// Longest prefix of `s` whose elements satisfy `pred` — the page-local
/// qualifying run of a sorted page (e.g. y >= ylo on a descending-y page,
/// x <= a on an ascending-x page). Every reporting path computes its
/// boundaries through these two helpers so the sortedness invariant lives
/// in one place.
template <typename T, typename Pred>
std::span<const T> TakeWhile(std::span<const T> s, Pred pred) {
  size_t n = 0;
  while (n < s.size() && pred(s[n])) n++;
  return s.first(n);
}

/// Drops the longest prefix of `s` whose elements satisfy `pred`.
template <typename T, typename Pred>
std::span<const T> DropWhile(std::span<const T> s, Pred pred) {
  size_t n = 0;
  while (n < s.size() && pred(s[n])) n++;
  return s.subspan(n);
}

/// Per-query driver a reporting path holds by reference: filters empty
/// batches, latches the stop verdict (checked between pages / before each
/// recursive descent), and stages filtered per-page emission.
template <typename T>
class SinkEmitter {
 public:
  explicit SinkEmitter(ResultSink<T>* sink) : sink_(sink) {}

  /// True once the sink has requested early termination. Producers check
  /// this before pinning the next page or descending into a child.
  bool stopped() const { return stopped_; }

  /// Emits one block (typically a span aliasing a pinned page). Returns
  /// stopped() for convenient `if (em.Emit(...)) return ...;` chains.
  bool Emit(std::span<const T> batch) {
    if (stopped_ || batch.empty()) return stopped_;
    stopped_ = sink_->Emit(batch) == SinkState::kStop;
    return stopped_;
  }

  /// Emits the subsequence of `batch` accepted by `pred`, staged through
  /// an internal scratch buffer — still one Emit per page, for reporting
  /// paths whose qualifying records are not contiguous on the page.
  template <typename Pred>
  bool EmitFiltered(std::span<const T> batch, Pred pred) {
    if (stopped_) return true;
    scratch_.clear();
    for (const T& v : batch) {
      if (pred(v)) scratch_.push_back(v);
    }
    return Emit(scratch_);
  }

  /// Emits the records of `batch` selected by a compacted index list (the
  /// output format of the simd/ filter kernels). When every record was
  /// selected the original span is forwarded zero-copy — the all-match
  /// page, common in range reporting, pays no gather at all.
  bool EmitGather(std::span<const T> batch, std::span<const uint32_t> idx) {
    if (stopped_ || idx.empty()) return stopped_;
    if (idx.size() == batch.size()) return Emit(batch);
    scratch_.clear();
    scratch_.reserve(idx.size());
    for (uint32_t i : idx) scratch_.push_back(batch[i]);
    return Emit(scratch_);
  }

 private:
  ResultSink<T>* sink_;
  std::vector<T> scratch_;
  bool stopped_ = false;
};

}  // namespace ccidx

#endif  // CCIDX_QUERY_SINK_H_
