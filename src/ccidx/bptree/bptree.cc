#include "ccidx/bptree/bptree.h"

#include <algorithm>
#include <cstddef>

#include "ccidx/io/wal.h"
#include "ccidx/simd/simd.h"

namespace ccidx {

namespace {

// On-page node layout:
//   [u32 count][u16 is_leaf][u16 reserved][u64 next][count * BtEntry]
// Internal nodes store (separator key = min key of child subtree, child id)
// in their entries; `next` is used only by the leaf chain.
constexpr size_t kNodeHeader = 16;

// Separator keys ascend, so both routing rules are partition points over
// seps[1..] (seps[0] is the leftmost child's min key, always taken when
// nothing else routes left of `key`), found by the dispatched branchless
// search — no per-level compare-and-branch walk down the node.

// Routing rule for point/lower-bound descent: the last child whose
// separator key is strictly below `key` (so duplicate runs that span a
// split boundary are never skipped); child 0 if none.
size_t RouteLowerBound(std::span<const BtEntry> seps, int64_t key) {
  if (seps.size() <= 1) return 0;
  return simd::LowerBoundI64(
      simd::Kernels(), simd::FieldBase(seps.data() + 1, offsetof(BtEntry, key)),
      sizeof(BtEntry), seps.size() - 1, key);
}

// Routing rule for inserts: the last child whose separator key is <= key,
// so new duplicates append to the right end of an equal-key run.
size_t RouteInsert(std::span<const BtEntry> seps, int64_t key) {
  if (seps.size() <= 1) return 0;
  return simd::UpperBoundI64(
      simd::Kernels(), simd::FieldBase(seps.data() + 1, offsetof(BtEntry, key)),
      sizeof(BtEntry), seps.size() - 1, key);
}

}  // namespace

BPlusTree::BPlusTree(Pager* pager)
    : pager_(pager),
      root_(kInvalidPageId),
      height_(0),
      sy_(std::make_unique<Sync>()) {
  CCIDX_CHECK(pager_ != nullptr);
  fanout_ = static_cast<uint32_t>((pager_->page_size() - kNodeHeader) /
                                  sizeof(BtEntry));
  CCIDX_CHECK(fanout_ >= 4);
}

BPlusTree::NodeView BPlusTree::ParseNode(PageRef ref) {
  PageReader r(ref.data());
  uint32_t count = r.Get<uint32_t>();
  NodeView view;
  view.is_leaf = r.Get<uint16_t>() != 0;
  r.Get<uint16_t>();
  view.next = r.Get<uint64_t>();
  // The span aliases the frame (or transient buffer), whose address is
  // stable under PageRef moves.
  view.entries = ViewArray<BtEntry>(ref, kNodeHeader, count);
  view.ref = std::move(ref);
  return view;
}

Result<BPlusTree::NodeView> BPlusTree::ViewNode(PageId id) const {
  auto ref = pager_->Pin(id);
  CCIDX_RETURN_IF_ERROR(ref.status());
  return ParseNode(std::move(*ref));
}

Status BPlusTree::LoadNode(PageId id, Node* node) const {
  auto view = ViewNode(id);
  CCIDX_RETURN_IF_ERROR(view.status());
  node->is_leaf = view->is_leaf;
  node->next = view->next;
  node->entries.assign(view->entries.begin(), view->entries.end());
  return Status::OK();
}

Status BPlusTree::StoreNode(PageId id, const Node& node) const {
  auto ref = pager_->PinMut(id, Pager::MutMode::kOverwrite);
  CCIDX_RETURN_IF_ERROR(ref.status());
  PageWriter w(ref->data());
  w.Put<uint32_t>(static_cast<uint32_t>(node.entries.size()));
  w.Put<uint16_t>(node.is_leaf ? 1 : 0);
  w.Put<uint16_t>(0);
  w.Put<uint64_t>(node.next);
  w.PutArray(std::span<const BtEntry>(node.entries));
  return ref->Release();
}

Status BPlusTree::DescendToLeaf(
    PageId start, int64_t key,
    std::vector<std::pair<PageId, size_t>>* path) const {
  path->clear();
  const uint32_t spec = pager_->speculation_budget();
  std::vector<PageId> warm;
  PageId id = start;
  while (true) {
    // One transient pin per level; the separators are routed in place.
    auto view = ViewNode(id);
    CCIDX_RETURN_IF_ERROR(view.status());
    if (view->is_leaf) {
      path->emplace_back(id, 0);
      return Status::OK();
    }
    size_t idx = RouteLowerBound(view->entries, key);
    // Speculative descent (DESIGN.md §10): stage the routed child and its
    // right siblings as one batched device round, so the next level's pin
    // hits and a rightward walk finds neighbors resident. spec is zero in
    // cost-model mode, keeping counted I/Os untouched there.
    size_t n = std::min<size_t>(spec, view->entries.size() - idx);
    if (n >= 2) {
      warm.clear();
      for (size_t i = 0; i < n; ++i) warm.push_back(view->entries[idx + i].value);
      pager_->WarmMany(warm);
    }
    path->emplace_back(id, idx);
    id = view->entries[idx].value;
  }
}

Status BPlusTree::DescendInsert(
    PageId start, int64_t key, std::vector<std::pair<PageId, size_t>>* path,
    Node* leaf, bool* all_full) const {
  path->clear();
  *all_full = true;
  PageId id = start;
  while (true) {
    auto view = ViewNode(id);
    CCIDX_RETURN_IF_ERROR(view.status());
    if (view->entries.size() < fanout_) *all_full = false;
    if (view->is_leaf) {
      leaf->is_leaf = true;
      leaf->next = view->next;
      leaf->entries.assign(view->entries.begin(), view->entries.end());
      path->emplace_back(id, 0);
      return Status::OK();
    }
    size_t idx = RouteInsert(view->entries, key);
    path->emplace_back(id, idx);
    id = view->entries[idx].value;
  }
}

Status BPlusTree::Insert(int64_t key, uint64_t value, int64_t aux) {
  BtEntry entry{key, value, aux};
  {
    // Shared-mode attempt: route through the root read-only, latch the
    // routed subtree, and insert inside it. Restarts exclusive when the
    // split cascade would reach the root (every path node full).
    std::shared_lock<std::shared_mutex> tl(sy_->tree_mu);
    if (root_ != kInvalidPageId && height_ > 1) {
      size_t idx;
      PageId child;
      {
        auto view = ViewNode(root_);
        CCIDX_RETURN_IF_ERROR(view.status());
        idx = RouteInsert(view->entries, key);
        child = view->entries[idx].value;
      }  // root pin released before blocking on the stripe
      std::lock_guard<std::mutex> sg(sy_->stripes[idx % kStripes]);
      std::vector<std::pair<PageId, size_t>> path;
      Node node;
      bool all_full = true;
      CCIDX_RETURN_IF_ERROR(
          DescendInsert(child, key, &path, &node, &all_full));
      if (!all_full) {
        // Some path node absorbs the cascade, so no write escapes the
        // latched subtree (path[0] = the root child; SplitAndPropagate
        // stops at the first non-full ancestor). The WAL txn commits
        // while the stripe is still held (DESIGN.md §13): releasing
        // first would let a concurrent txn log this txn's uncommitted
        // pages as its own before-images.
        WalScope ws(pager_);
        auto pos = std::upper_bound(node.entries.begin(),
                                    node.entries.end(), entry);
        node.entries.insert(pos, entry);
        sy_->size.fetch_add(1, std::memory_order_relaxed);
        CCIDX_RETURN_IF_ERROR(
            SplitAndPropagate(std::move(path), std::move(node)));
        return ws.Commit();
      }
    }
  }
  std::unique_lock<std::shared_mutex> tl(sy_->tree_mu);
  WalScope ws(pager_);
  CCIDX_RETURN_IF_ERROR(InsertExclusive(entry));
  return ws.Commit();
}

Status BPlusTree::InsertExclusive(const BtEntry& entry) {
  if (root_ == kInvalidPageId) {
    Node leaf;
    leaf.is_leaf = true;
    leaf.entries.push_back(entry);
    root_ = pager_->Allocate();
    height_ = 1;
    sy_->size.store(1, std::memory_order_relaxed);
    return StoreNode(root_, leaf);
  }

  // Descend with insert routing, recording the path. Internal levels are
  // routed in place from pinned frames; only the target leaf is
  // materialized for modification.
  std::vector<std::pair<PageId, size_t>> path;
  Node node;
  bool all_full = true;
  CCIDX_RETURN_IF_ERROR(
      DescendInsert(root_, entry.key, &path, &node, &all_full));

  auto pos = std::upper_bound(node.entries.begin(), node.entries.end(), entry);
  node.entries.insert(pos, entry);
  sy_->size.fetch_add(1, std::memory_order_relaxed);
  return SplitAndPropagate(std::move(path), std::move(node));
}

Status BPlusTree::SplitAndPropagate(
    std::vector<std::pair<PageId, size_t>> path, Node node) {
  size_t level = path.size() - 1;
  PageId node_id = path[level].first;

  while (node.entries.size() > fanout_) {
    // Split `node` into itself (left half) and a fresh right sibling.
    Node right;
    right.is_leaf = node.is_leaf;
    size_t mid = node.entries.size() / 2;
    right.entries.assign(node.entries.begin() + mid, node.entries.end());
    node.entries.resize(mid);
    PageId right_id = pager_->Allocate();
    if (node.is_leaf) {
      right.next = node.next;
      node.next = right_id;
    }
    BtEntry promoted{right.entries[0].key, right_id, 0};
    CCIDX_RETURN_IF_ERROR(StoreNode(node_id, node));
    CCIDX_RETURN_IF_ERROR(StoreNode(right_id, right));

    if (level == 0) {
      Node new_root;
      new_root.is_leaf = false;
      new_root.entries = {{node.entries[0].key, node_id, 0}, promoted};
      root_ = pager_->Allocate();
      height_++;
      return StoreNode(root_, new_root);
    }

    level--;
    node_id = path[level].first;
    size_t child_idx = path[level].second;
    CCIDX_RETURN_IF_ERROR(LoadNode(node_id, &node));
    CCIDX_CHECK(!node.is_leaf && child_idx < node.entries.size());
    node.entries.insert(node.entries.begin() + child_idx + 1, promoted);
  }
  return StoreNode(node_id, node);
}

Status BPlusTree::Delete(int64_t key, uint64_t value, bool* found) {
  *found = false;
  {
    // Shared-mode attempt: latch the routed subtree and resolve the
    // delete inside its first candidate leaf. A duplicate run that
    // continues into the next leaf may cross a subtree boundary, so that
    // case restarts under the exclusive tree latch.
    std::shared_lock<std::shared_mutex> tl(sy_->tree_mu);
    if (root_ == kInvalidPageId) return Status::OK();
    if (height_ > 1) {
      size_t idx;
      PageId child;
      {
        auto view = ViewNode(root_);
        CCIDX_RETURN_IF_ERROR(view.status());
        idx = RouteLowerBound(view->entries, key);
        child = view->entries[idx].value;
      }
      std::lock_guard<std::mutex> sg(sy_->stripes[idx % kStripes]);
      // Declared under the stripe so both commit and (in-process) abort
      // resolve before another writer can observe the leaf. Not-found
      // exits log nothing and the scope unwinds for free.
      WalScope ws(pager_);
      std::vector<std::pair<PageId, size_t>> path;
      CCIDX_RETURN_IF_ERROR(DescendToLeaf(child, key, &path));
      Node node;
      CCIDX_RETURN_IF_ERROR(LoadNode(path.back().first, &node));
      bool passed = false;
      for (size_t i = 0; i < node.entries.size(); ++i) {
        const BtEntry& e = node.entries[i];
        if (e.key > key) {
          passed = true;
          break;
        }
        if (e.key == key && e.value == value) {
          node.entries.erase(node.entries.begin() + i);
          sy_->size.fetch_sub(1, std::memory_order_relaxed);
          *found = true;
          CCIDX_RETURN_IF_ERROR(StoreNode(path.back().first, node));
          return ws.Commit();
        }
      }
      if (passed || node.next == kInvalidPageId) return Status::OK();
    }
  }
  std::unique_lock<std::shared_mutex> tl(sy_->tree_mu);
  WalScope ws(pager_);
  CCIDX_RETURN_IF_ERROR(DeleteExclusive(key, value, found));
  return *found ? ws.Commit() : Status::OK();
}

Status BPlusTree::DeleteExclusive(int64_t key, uint64_t value, bool* found) {
  *found = false;
  if (root_ == kInvalidPageId) return Status::OK();
  std::vector<std::pair<PageId, size_t>> path;
  CCIDX_RETURN_IF_ERROR(DescendToLeaf(root_, key, &path));
  PageId id = path.back().first;
  Node node;
  while (id != kInvalidPageId) {
    CCIDX_RETURN_IF_ERROR(LoadNode(id, &node));
    for (size_t i = 0; i < node.entries.size(); ++i) {
      const BtEntry& e = node.entries[i];
      if (e.key > key) return Status::OK();  // passed all candidates
      if (e.key == key && e.value == value) {
        node.entries.erase(node.entries.begin() + i);
        sy_->size.fetch_sub(1, std::memory_order_relaxed);
        *found = true;
        return StoreNode(id, node);
      }
    }
    id = node.next;
  }
  return Status::OK();
}

namespace {

// The page-local qualifying run of one leaf: entries with lo <= key <= hi,
// computed with the dispatched SIMD bound kernels. `tail_size` reports how
// many entries had key >= lo — when the run is shorter than that, the scan
// crossed above hi and must stop.
std::span<const BtEntry> QualifyingRun(std::span<const BtEntry> entries,
                                       int64_t lo, int64_t hi,
                                       size_t* tail_size) {
  const simd::KernelTable& k = simd::Kernels();
  const uint8_t* keys = simd::FieldBase(entries.data(), offsetof(BtEntry, key));
  std::span<const BtEntry> tail = entries.subspan(
      k.first_i64_ge(keys, sizeof(BtEntry), entries.size(), lo));
  *tail_size = tail.size();
  return tail.first(k.first_i64_gt(
      simd::FieldBase(tail.data(), offsetof(BtEntry, key)), sizeof(BtEntry),
      tail.size(), hi));
}

}  // namespace

Status BPlusTree::RangeScanBatched(int64_t lo, int64_t hi,
                                   SinkEmitter<BtEntry>* em) const {
  const size_t budget = std::max<uint32_t>(pager_->speculation_budget(), 1);

  // Descend to the first qualifying leaf. Each internal node's child ids
  // right of the routed child are copied out (the pin is released before
  // the next level is touched, so the scan never holds more pins than the
  // current leaf window), and the routed child plus its right siblings are
  // staged as one batched device round.
  std::vector<std::vector<PageId>> anc;  // per level: routed child + right sibs
  std::vector<size_t> anc_idx;           // position within anc[level]
  std::vector<PageId> scratch;
  NodeView leaf;
  {
    PageId id = root_;
    while (true) {
      auto view = ViewNode(id);
      CCIDX_RETURN_IF_ERROR(view.status());
      if (view->is_leaf) {
        leaf = std::move(*view);
        break;
      }
      size_t idx = RouteLowerBound(view->entries, lo);
      std::vector<PageId> kids;
      kids.reserve(view->entries.size() - idx);
      for (size_t i = idx; i < view->entries.size(); ++i) {
        kids.push_back(view->entries[i].value);
      }
      size_t n = std::min(budget, kids.size());
      if (n >= 2) pager_->WarmMany(std::span<const PageId>(kids).first(n));
      id = kids[0];
      anc.push_back(std::move(kids));
      anc_idx.push_back(0);
    }
  }

  // Leaf-window loop: emit the current leaf, then advance — first within
  // the batch-pinned window, else pin the next window of up to `budget`
  // sibling leaves from the deepest ancestor with children left (one
  // PinMany = one concurrent device round). Crossing a parent boundary
  // re-reads one internal node per crossed level; together with up to
  // budget-1 pinned-but-unused leaves past hi, that is the documented
  // speculation overshoot — and the reason this path is never taken in
  // cost-model mode.
  std::vector<PageRef> window;
  size_t window_pos = 0;
  while (!em->stopped()) {
    size_t tail_size = 0;
    std::span<const BtEntry> run =
        QualifyingRun(leaf.entries, lo, hi, &tail_size);
    em->Emit(run);
    if (run.size() < tail_size) return Status::OK();  // crossed above hi
    if (em->stopped()) return Status::OK();
    leaf = NodeView{};  // release before pinning the next window

    if (window_pos < window.size()) {
      leaf = ParseNode(std::move(window[window_pos++]));
      continue;
    }
    window.clear();
    window_pos = 0;

    // Deepest ancestor with an unvisited child; none => right edge.
    size_t level = anc.size();
    while (level > 0 && anc_idx[level - 1] + 1 >= anc[level - 1].size()) {
      level--;
    }
    if (level == 0) return Status::OK();
    anc_idx[level - 1]++;
    anc.resize(level);
    anc_idx.resize(level);
    // Re-descend leftmost to the leaf-parent depth (boundary-crossing
    // internal reads: part of the overshoot bound).
    while (anc.size() + 1 < height_) {
      auto v = ViewNode(anc.back()[anc_idx.back()]);
      CCIDX_RETURN_IF_ERROR(v.status());
      CCIDX_CHECK(!v->is_leaf);
      std::vector<PageId> kids;
      kids.reserve(v->entries.size());
      for (const BtEntry& e : v->entries) kids.push_back(e.value);
      anc.push_back(std::move(kids));
      anc_idx.push_back(0);
    }

    const std::vector<PageId>& parent = anc.back();
    size_t idx = anc_idx.back();
    size_t n = std::min(budget, parent.size() - idx);
    scratch.assign(parent.begin() + idx, parent.begin() + idx + n);
    auto refs = pager_->PinMany(scratch);
    if (!refs.ok() && n > 1 &&
        refs.status().code() == StatusCode::kResourceExhausted) {
      // The window itself exhausted the pool: degrade to the serial
      // one-leaf-at-a-time footprint rather than failing a scan that
      // would succeed without speculation.
      n = 1;
      scratch.resize(1);
      refs = pager_->PinMany(scratch);
    }
    CCIDX_RETURN_IF_ERROR(refs.status());
    window = std::move(*refs);
    anc_idx.back() = idx + n - 1;
    leaf = ParseNode(std::move(window[0]));
    window_pos = 1;
  }
  return Status::OK();
}

Status BPlusTree::RangeScan(int64_t lo, int64_t hi,
                            ResultSink<BtEntry>* sink) const {
  if (root_ == kInvalidPageId || lo > hi) return Status::OK();
  SinkEmitter<BtEntry> em(sink);
  if (pager_->speculation_budget() > 0 && height_ > 1) {
    // Overlap pays (latency-injecting or file-backed device): batch the
    // leaf level instead of chasing next pointers one device round at a
    // time. Cost-model runs (speculation_budget() == 0) keep the exact
    // historical access pattern below.
    return RangeScanBatched(lo, hi, &em);
  }
  std::vector<std::pair<PageId, size_t>> path;
  CCIDX_RETURN_IF_ERROR(DescendToLeaf(root_, lo, &path));
  PageId id = path.back().first;
  while (id != kInvalidPageId && !em.stopped()) {
    // Keys ascend within a leaf, so the qualifying entries are one
    // contiguous run, emitted straight from the pinned frame.
    auto view = ViewNode(id);
    CCIDX_RETURN_IF_ERROR(view.status());
    size_t tail_size = 0;
    std::span<const BtEntry> run =
        QualifyingRun(view->entries, lo, hi, &tail_size);
    if (run.size() == tail_size && view->next != kInvalidPageId) {
      // Scan continues into the next leaf (unless the sink stops): stage
      // its read so it overlaps the emit.
      pager_->Prefetch({&view->next, 1});
    }
    em.Emit(run);
    if (run.size() < tail_size) return Status::OK();  // crossed above hi
    id = view->next;
  }
  return Status::OK();
}

Status BPlusTree::RangeSearch(int64_t lo, int64_t hi,
                              std::vector<BtEntry>* out) const {
  VectorSink<BtEntry> sink(out);
  return RangeScan(lo, hi, &sink);
}

Status BPlusTree::RangeScan(
    int64_t lo, int64_t hi,
    const std::function<void(const BtEntry&)>& fn) const {
  FunctionSink<BtEntry> sink([&fn](std::span<const BtEntry> batch) {
    for (const BtEntry& e : batch) fn(e);
    return SinkState::kContinue;
  });
  return RangeScan(lo, hi, &sink);
}

// Streaming level-by-level packer: each level holds at most two pending
// nodes (the previous full node waits for its successor's page id before
// it is written, and for the tail rebalance at finish).
class BtBulkLoader {
 public:
  BtBulkLoader(BPlusTree* tree, Pager* pager, uint32_t cap)
      : tree_(tree), pager_(pager), cap_(cap) {}

  Status Add(size_t depth, const BtEntry& e) {
    if (levels_.size() <= depth) levels_.emplace_back();
    Level& lv = levels_[depth];
    if (!lv.has_cur) OpenNode(lv, depth);
    if (lv.cur.entries.size() == cap_) {
      CCIDX_RETURN_IF_ERROR(Rotate(lv, depth));
    }
    levels_[depth].cur.entries.push_back(e);
    return Status::OK();
  }

  // Flushes every level bottom-up; returns the root. Add() may grow
  // levels_ (separators propagate upward), so no Level reference is held
  // across an Add() call and the loop bound is re-read each iteration.
  Result<PageId> Finish(uint32_t* height) {
    for (size_t depth = 0; depth < levels_.size(); ++depth) {
      CCIDX_CHECK(levels_[depth].has_cur);
      *height = static_cast<uint32_t>(depth + 1);
      if (!levels_[depth].has_prev && levels_.size() == depth + 1) {
        // A single node with nothing above it: the root.
        Level& lv = levels_[depth];
        CCIDX_RETURN_IF_ERROR(tree_->StoreNode(lv.cur_id, lv.cur));
        return lv.cur_id;
      }
      if (levels_[depth].has_prev) {
        Level& lv = levels_[depth];
        // Tail rebalance: never leave the last node below half full.
        if (lv.cur.entries.size() < (cap_ + 1) / 2) {
          std::vector<BtEntry>& a = lv.prev.entries;
          std::vector<BtEntry>& b = lv.cur.entries;
          size_t left = (a.size() + b.size()) / 2;
          b.insert(b.begin(), a.begin() + left, a.end());
          a.resize(left);
        }
        if (depth == 0) lv.prev.next = lv.cur_id;
        BtEntry sep{lv.prev.entries[0].key, lv.prev_id, 0};
        CCIDX_RETURN_IF_ERROR(tree_->StoreNode(lv.prev_id, lv.prev));
        CCIDX_RETURN_IF_ERROR(Add(depth + 1, sep));
      }
      BtEntry sep{levels_[depth].cur.entries[0].key, levels_[depth].cur_id,
                  0};
      CCIDX_RETURN_IF_ERROR(
          tree_->StoreNode(levels_[depth].cur_id, levels_[depth].cur));
      CCIDX_RETURN_IF_ERROR(Add(depth + 1, sep));
    }
    return Status::Corruption("bulk load produced no root");
  }

 private:
  struct Level {
    BPlusTree::Node prev;
    PageId prev_id = kInvalidPageId;
    bool has_prev = false;
    BPlusTree::Node cur;
    PageId cur_id = kInvalidPageId;
    bool has_cur = false;
  };

  void OpenNode(Level& lv, size_t depth) {
    lv.cur = BPlusTree::Node{};
    lv.cur.is_leaf = (depth == 0);
    lv.cur_id = pager_->Allocate();
    lv.has_cur = true;
  }

  // The current node is full and another entry is coming: the previous
  // node's successor is now known, so it can be written out; its
  // separator ascends one level.
  Status Rotate(Level& lv, size_t depth) {
    if (lv.has_prev) {
      if (depth == 0) lv.prev.next = lv.cur_id;
      CCIDX_RETURN_IF_ERROR(tree_->StoreNode(lv.prev_id, lv.prev));
      CCIDX_RETURN_IF_ERROR(
          Add(depth + 1, {lv.prev.entries[0].key, lv.prev_id, 0}));
    }
    // Add() may have grown levels_ and invalidated `lv`.
    Level& fresh = levels_[depth];
    fresh.prev = std::move(fresh.cur);
    fresh.prev_id = fresh.cur_id;
    fresh.has_prev = true;
    OpenNode(fresh, depth);
    return Status::OK();
  }

  BPlusTree* tree_;
  Pager* pager_;
  uint32_t cap_;
  std::vector<Level> levels_;
};

Result<BPlusTree> BPlusTree::BulkLoad(Pager* pager,
                                      RecordStream<BtEntry>* sorted) {
  BPlusTree tree(pager);
  // Every page is txn-allocated, so the WAL txn carries only kAlloc
  // records (no before-images): an uncommitted bulk load is undone at
  // recovery purely by re-freeing its pages.
  WalScope ws(pager);
  AllocationScope scope(pager);
  BtBulkLoader loader(&tree, pager, tree.fanout_);
  uint64_t n = 0;
  BtEntry prev{};
  while (true) {
    auto block = sorted->Next();
    CCIDX_RETURN_IF_ERROR(block.status());
    if (block->empty()) break;
    for (const BtEntry& e : *block) {
      if (n > 0 && e < prev) {
        return Status::InvalidArgument("bulk-load input not sorted");
      }
      prev = e;
      CCIDX_RETURN_IF_ERROR(loader.Add(0, e));
      n++;
    }
  }
  if (n == 0) {
    scope.Commit();
    CCIDX_RETURN_IF_ERROR(ws.Commit());
    return tree;
  }
  uint32_t height = 0;
  auto root = loader.Finish(&height);
  CCIDX_RETURN_IF_ERROR(root.status());
  tree.root_ = *root;
  tree.height_ = height;
  tree.sy_->size.store(n, std::memory_order_relaxed);
  scope.Commit();
  CCIDX_RETURN_IF_ERROR(ws.Commit());
  return tree;
}

Result<BPlusTree> BPlusTree::BulkLoad(Pager* pager,
                                      std::span<const BtEntry> sorted) {
  SpanStream<BtEntry> stream(sorted);
  return BulkLoad(pager, &stream);
}

Status BPlusTree::Destroy() {
  if (root_ == kInvalidPageId) return Status::OK();
  // Iterative post-order free. Under a WAL the frees are logged with
  // their before-images and deferred to scope exit, so a crash mid-
  // destroy restores the whole tree.
  WalScope ws(pager_);
  std::vector<PageId> stack = {root_};
  Node node;
  while (!stack.empty()) {
    PageId id = stack.back();
    stack.pop_back();
    CCIDX_RETURN_IF_ERROR(LoadNode(id, &node));
    if (!node.is_leaf) {
      for (const BtEntry& e : node.entries) stack.push_back(e.value);
    }
    CCIDX_RETURN_IF_ERROR(pager_->Free(id));
  }
  root_ = kInvalidPageId;
  sy_->size.store(0, std::memory_order_relaxed);
  height_ = 0;
  return ws.Commit();
}

std::vector<uint8_t> BPlusTree::SerializeMeta() const {
  WalEncoder enc;
  enc.PutU64(root_);
  enc.PutU32(height_);
  enc.PutU64(size());
  return std::move(enc).Take();
}

Result<BPlusTree> BPlusTree::AttachMeta(Pager* pager,
                                        std::span<const uint8_t> meta) {
  WalDecoder dec(meta);
  PageId root = dec.GetU64();
  uint32_t height = dec.GetU32();
  uint64_t size = dec.GetU64();
  if (!dec.ok() || dec.remaining() != 0) {
    return Status::Corruption("malformed B+-tree meta blob");
  }
  BPlusTree tree(pager);
  tree.root_ = root;
  tree.height_ = height;
  tree.sy_->size.store(size, std::memory_order_relaxed);
  return tree;
}

Status BPlusTree::CheckInvariants() const {
  if (root_ == kInvalidPageId) {
    if (size() != 0) return Status::Corruption("empty tree with size != 0");
    return Status::OK();
  }

  uint64_t counted = 0;
  std::vector<PageId> leftmost_leaf_by_tree;

  // DFS with (id, depth, lower-bound key the subtree must respect).
  struct Item {
    PageId id;
    uint32_t depth;
    int64_t lower;  // all keys in subtree must be >= lower
    bool enforce_lower;
  };
  std::vector<Item> stack = {{root_, 1, 0, false}};
  std::vector<PageId> leaves_in_tree_order;
  Node node;
  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    CCIDX_RETURN_IF_ERROR(LoadNode(item.id, &node));
    // Internal nodes: entry 0's key is logically -infinity (a stale hint at
    // best, since inserts into the leftmost subtree may undercut it), so
    // ordering is only required from entry 1 onward.
    auto order_begin =
        node.is_leaf ? node.entries.begin()
                     : (node.entries.empty() ? node.entries.end()
                                             : node.entries.begin() + 1);
    if (!std::is_sorted(order_begin, node.entries.end(),
                        [&](const BtEntry& a, const BtEntry& b) {
                          return node.is_leaf ? (a < b) : (a.key < b.key);
                        })) {
      return Status::Corruption("node entries out of order");
    }
    if (node.is_leaf) {
      if (item.depth != height_) {
        return Status::Corruption("leaf at wrong depth");
      }
      counted += node.entries.size();
      leaves_in_tree_order.push_back(item.id);
      if (item.enforce_lower && !node.entries.empty() &&
          node.entries[0].key < item.lower) {
        return Status::Corruption("leaf key below separator");
      }
    } else {
      if (node.entries.empty()) {
        return Status::Corruption("empty internal node");
      }
      // Push children right-to-left so DFS visits leaves left-to-right.
      for (size_t i = node.entries.size(); i-- > 0;) {
        bool enforce = item.enforce_lower || i > 0;
        int64_t lower = (i > 0) ? node.entries[i].key
                                : (item.enforce_lower ? item.lower : 0);
        stack.push_back({node.entries[i].value, item.depth + 1, lower,
                         enforce});
      }
    }
  }
  if (counted != size()) {
    return Status::Corruption("entry count mismatch");
  }

  // The leaf chain must enumerate exactly the leaves in tree order.
  std::vector<PageId> leaves_in_chain_order;
  PageId id = leaves_in_tree_order.empty() ? kInvalidPageId
                                           : leaves_in_tree_order[0];
  while (id != kInvalidPageId) {
    leaves_in_chain_order.push_back(id);
    CCIDX_RETURN_IF_ERROR(LoadNode(id, &node));
    id = node.next;
  }
  if (leaves_in_chain_order != leaves_in_tree_order) {
    return Status::Corruption("leaf chain disagrees with tree order");
  }
  return Status::OK();
}

}  // namespace ccidx
