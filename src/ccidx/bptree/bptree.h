// External B+-tree: dynamic one-dimensional range searching.
//
// The paper's point of reference (§1.1): space O(n/B) pages, range query
// O(log_B n + t/B) I/Os, insert/delete O(log_B n) I/Os. Used here as
//   * the baseline for experiment E1,
//   * the endpoint index of interval management (types 1 & 2, Prop. 2.2),
//   * the per-collection index of class indexing ("index a collection",
//     §2.2).
//
// Data lives only in the leaves; leaves are chained left-to-right, so a
// range scan locates the lower bound and walks the chain (B+-tree per [10]).
// Duplicate keys are allowed; entries are unique by (key, value).
//
// Deletes remove entries in place. Pages are not merged on underflow (as in
// several production B-trees, e.g. PostgreSQL's nbtree, reclamation happens
// on rebuild); empty leaves are unlinked lazily during scans' cost is still
// O(log_B n + t/B) counting live pages, and the paper's own structures are
// insert-only, so this does not affect any reproduced bound.

#ifndef CCIDX_BPTREE_BPTREE_H_
#define CCIDX_BPTREE_BPTREE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "ccidx/build/record_stream.h"
#include "ccidx/io/page_builder.h"
#include "ccidx/io/pager.h"
#include "ccidx/query/sink.h"

namespace ccidx {

/// One indexed entry: a key, an opaque 64-bit payload (e.g. object id), and
/// an auxiliary 64-bit field carried alongside (e.g. an interval's second
/// endpoint, or a class code) so range scans stay output-compact (t/B pages)
/// without a side lookup per result. Entries are identified by (key, value);
/// aux does not participate in ordering or equality of identity.
struct BtEntry {
  int64_t key;
  uint64_t value;
  int64_t aux;

  bool operator==(const BtEntry& o) const {
    return key == o.key && value == o.value && aux == o.aux;
  }
  bool operator<(const BtEntry& o) const {
    if (key != o.key) return key < o.key;
    return value < o.value;
  }
};

/// A dynamic external-memory B+-tree over (int64 key, uint64 value) entries.
/// Insert and Delete are worst-case O(log_B n) I/Os (no amortization) —
/// the reference point for the dynamization layer's amortized families
/// (DESIGN.md §8).
///
/// Thread safety (DESIGN.md §11): RangeScan/RangeSearch are const and safe
/// to run from any number of threads concurrently over one shared Pager;
/// the epoch gate excludes them from writes. Within a write epoch, Insert
/// and Delete are safe from N threads concurrently: each takes the tree
/// latch shared plus one striped subtree latch keyed by the root child it
/// routes through, so updates to different root subtrees run in parallel
/// (no write ever touches another subtree's pages — the root page is
/// read-only in shared mode). An insert whose split cascade would reach
/// the root (every node on the descent path full — decided read-only
/// before any write) and a delete whose duplicate run crosses a leaf
/// boundary restart under the exclusive tree latch instead. BulkLoad,
/// Destroy, and CheckInvariants still require full quiescence.
class BPlusTree {
 public:
  /// Creates an empty tree whose pages are managed by `pager`.
  explicit BPlusTree(Pager* pager);

  /// Bulk-loads from a stream of entries sorted by (key, value): true
  /// leaf packing, one level of node builders deep — O(n/B) I/Os with
  /// O(B log_B n) working memory, so inputs need never be materialized.
  /// The last two nodes of each level are rebalanced so no node ends
  /// below half full. Fault-atomic.
  static Result<BPlusTree> BulkLoad(Pager* pager,
                                    RecordStream<BtEntry>* sorted);

  /// In-memory wrapper over the streaming bulk load.
  static Result<BPlusTree> BulkLoad(Pager* pager,
                                    std::span<const BtEntry> sorted);

  /// Inserts an entry; duplicates by (key, value) are permitted and stored.
  /// O(log_B n) I/Os.
  Status Insert(int64_t key, uint64_t value, int64_t aux = 0);

  /// Removes one entry equal to (key, value). Sets *found accordingly.
  Status Delete(int64_t key, uint64_t value, bool* found);

  /// Streams all entries with lo <= key <= hi into `sink` in key order,
  /// one leaf-page span at a time straight from the pinned frame; kStop
  /// stops the leaf-chain walk before another page is pinned.
  /// O(log_B n + t/B) I/Os.
  Status RangeScan(int64_t lo, int64_t hi, ResultSink<BtEntry>* sink) const;

  /// Appends all entries with lo <= key <= hi to `out`, in key order.
  /// O(log_B n + t/B) I/Os.
  Status RangeSearch(int64_t lo, int64_t hi, std::vector<BtEntry>* out) const;

  /// Streaming variant: invokes `fn` per matching entry.
  Status RangeScan(int64_t lo, int64_t hi,
                   const std::function<void(const BtEntry&)>& fn) const;

  /// Number of entries. Thread-safe (relaxed read).
  uint64_t size() const {
    return sy_->size.load(std::memory_order_relaxed);
  }

  /// Height in nodes (0 for empty tree, 1 for a single leaf).
  uint32_t height() const { return height_; }

  /// Root page id (kInvalidPageId when empty).
  PageId root() const { return root_; }

  /// Owning pager. Composite indexes use this to stage batched warm-ups
  /// of several component-tree roots before querying them serially.
  Pager* pager() const { return pager_; }

  /// Maximum entries per node for this pager's page size.
  uint32_t fanout() const { return fanout_; }

  /// Frees every page owned by the tree.
  Status Destroy();

  /// Structural invariant check (keys ordered, separator keys correct,
  /// leaf chain consistent). Used by tests; O(n/B) I/Os.
  Status CheckInvariants() const;

  /// Serializes the attachable state (root, height, size) for the WAL
  /// meta registry (DESIGN.md §13). Fanout is a function of the page
  /// size and is recomputed on attach. Requires quiescence.
  std::vector<uint8_t> SerializeMeta() const;

  /// Rebuilds a handle onto pages recovered by Wal::Recover from a blob
  /// produced by SerializeMeta against the same pager geometry.
  static Result<BPlusTree> AttachMeta(Pager* pager,
                                      std::span<const uint8_t> meta);

 private:
  friend class BtBulkLoader;  // streaming bulk-load packer (bptree.cc)

  // In-memory image of one node page (update paths: the entries vector is
  // mutated and stored back).
  struct Node {
    bool is_leaf = true;
    PageId next = kInvalidPageId;  // leaf chain (leaves only)
    std::vector<BtEntry> entries;  // leaf: data; internal: (min_key, child)
  };

  // Zero-copy image of one node page: the entry span aliases the pinned
  // buffer-pool frame and stays valid while `ref` is held. Used by the
  // read-only hot paths (descent, range scans).
  struct NodeView {
    PageRef ref;
    bool is_leaf = true;
    PageId next = kInvalidPageId;
    std::span<const BtEntry> entries;
  };

  // Decodes the node header/entries of an already-pinned page; the view
  // takes ownership of the ref. Shared by ViewNode and the batched scan
  // path (which pins whole leaf windows via Pager::PinMany).
  static NodeView ParseNode(PageRef ref);

  Result<NodeView> ViewNode(PageId id) const;
  Status LoadNode(PageId id, Node* node) const;
  Status StoreNode(PageId id, const Node& node) const;

  // Speculation-gated scan (DESIGN.md §10): reached only when
  // pager_->speculation_budget() > 0 (never in cost-model mode). Walks the
  // leaf level through parent child-id windows pinned as one concurrent
  // device batch instead of the dependent next-pointer chain, so a t/B-leaf
  // scan costs ~t/(B*budget) device round-trips of latency instead of t/B.
  Status RangeScanBatched(int64_t lo, int64_t hi,
                          SinkEmitter<BtEntry>* em) const;

  // Descends from `start` to the leaf that should hold `key`, recording
  // the path as (page id, child index within parent). path->back() is
  // the leaf.
  Status DescendToLeaf(PageId start, int64_t key,
                       std::vector<std::pair<PageId, size_t>>* path) const;

  Status InsertIntoLeaf(const std::vector<std::pair<PageId, size_t>>& path,
                        BtEntry entry);
  Status SplitAndPropagate(std::vector<std::pair<PageId, size_t>> path,
                           Node node);

  // Shared-mode descent for Insert: records the path from `start` down
  // (insert routing), materializes the leaf into `*leaf`, and reports in
  // `*all_full` whether every node on the path is at capacity — the exact
  // predicate for "the split cascade reaches above `start`".
  Status DescendInsert(PageId start, int64_t key,
                       std::vector<std::pair<PageId, size_t>>* path,
                       Node* leaf, bool* all_full) const;

  // Full insert/delete under the exclusive tree latch (also the
  // sequential path for trees of height <= 1).
  Status InsertExclusive(const BtEntry& entry);
  Status DeleteExclusive(int64_t key, uint64_t value, bool* found);

  static constexpr size_t kStripes = 16;

  // Write-epoch latches (DESIGN.md §11), boxed so the tree stays
  // movable. Lock order: tree_mu (shared) -> one stripe.
  struct Sync {
    std::shared_mutex tree_mu;
    std::array<std::mutex, kStripes> stripes;
    std::atomic<uint64_t> size{0};
  };

  Pager* pager_;
  PageId root_;
  uint32_t height_;
  uint32_t fanout_;
  std::unique_ptr<Sync> sy_;
};

}  // namespace ccidx

#endif  // CCIDX_BPTREE_BPTREE_H_
