// Session: per-client serving state (DESIGN.md §12).
//
// A session owns two client-visible contracts:
//
//  * Response ordering. Request ids are a per-session monotone sequence
//    (1, 2, 3, ...). Batches complete out of order — two requests from
//    one client can land in different dispatch batches, and a shed is
//    decided before its predecessor even executes — so Deliver() buffers
//    completions and writes them to the transport strictly in id order.
//    Every admitted-or-rejected request gets exactly one response;
//    rejections (kOverloaded / kNoCredit / kDeadlineExceeded /
//    kBadRequest) flow through the same ordered path.
//
//  * Flow-control credits. A session holds `credits` concurrent
//    requests; AcquireCredit() at admission fails when the window is
//    exhausted (the transport answers kNoCredit without touching the
//    queue), and the credit returns when the response is written. This
//    bounds any one client's share of the submission queue, so a single
//    hot client cannot shed everyone else.
//
// Lifetime vs. the epoch gate (the §12 latch/lifetime contract): a
// dispatcher worker calls Deliver() while *inside* a gate read epoch
// (queries) or write epoch (updates). The writer callback must therefore
// never re-enter the engine or block on the gate — transports only move
// bytes (loopback: append to an inbox; TCP: append to the connection's
// outbox and arm EPOLLOUT). Sessions are destroyed only after the
// dispatcher has drained every submission pointing at them (the server
// closes the queue and joins the dispatcher first), so a Submission's
// raw Session* can never dangle.

#ifndef CCIDX_SERVE_SESSION_H_
#define CCIDX_SERVE_SESSION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "ccidx/serve/codec.h"
#include "ccidx/serve/frame.h"

namespace ccidx {
namespace serve {

class Session {
 public:
  /// `writer` receives each encoded response frame, in request-id order.
  /// It is called with the session mutex held and must only move bytes
  /// (see file comment).
  using Writer = std::function<void(std::span<const uint8_t>)>;

  Session(uint64_t session_id, uint32_t credits, Writer writer)
      : session_id_(session_id), credits_(credits), writer_(std::move(writer)) {}

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  uint64_t session_id() const { return session_id_; }

  /// Takes one flow-control credit; false when the window is exhausted.
  /// Called by the transport before TryPush.
  bool AcquireCredit() {
    std::lock_guard lock(mu_);
    if (credits_ == 0) return false;
    --credits_;
    return true;
  }

  /// Completes one request. Buffers until every lower id has been
  /// delivered, then writes this response (and any unblocked successors)
  /// through the writer and returns their credits. `return_credit` is
  /// false only for the kNoCredit rejection, which never took one.
  void Deliver(Response resp, bool return_credit = true) {
    std::lock_guard lock(mu_);
    pending_.emplace(resp.id,
                     PendingResponse{std::move(resp), return_credit});
    while (true) {
      auto it = pending_.find(next_id_);
      if (it == pending_.end()) break;
      encode_buf_.clear();
      EncodeResponse(it->second.resp, &encode_buf_);
      if (writer_) writer_(encode_buf_);
      ++delivered_;
      if (it->second.return_credit) ++credits_;
      pending_.erase(it);
      ++next_id_;
    }
  }

  /// Responses written to the transport so far.
  uint64_t delivered() const {
    std::lock_guard lock(mu_);
    return delivered_;
  }

  /// Completions buffered waiting for a predecessor.
  size_t buffered() const {
    std::lock_guard lock(mu_);
    return pending_.size();
  }

  uint32_t credits() const {
    std::lock_guard lock(mu_);
    return credits_;
  }

 private:
  struct PendingResponse {
    Response resp;
    bool return_credit;
  };

  const uint64_t session_id_;

  mutable std::mutex mu_;
  uint32_t credits_;                    // guarded by mu_
  uint64_t next_id_ = 1;                // guarded by mu_
  uint64_t delivered_ = 0;              // guarded by mu_
  std::map<uint64_t, PendingResponse> pending_;  // guarded by mu_
  std::vector<uint8_t> encode_buf_;     // guarded by mu_
  Writer writer_;
};

}  // namespace serve
}  // namespace ccidx

#endif  // CCIDX_SERVE_SESSION_H_
