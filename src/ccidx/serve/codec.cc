#include "ccidx/serve/codec.h"

#include <cstring>

namespace ccidx {
namespace serve {
namespace {

// --- little-endian primitives -------------------------------------------

void Put8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void Put16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void Put32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void Put64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutI64(std::vector<uint8_t>* out, int64_t v) {
  Put64(out, static_cast<uint64_t>(v));
}

// Bounds-checked reader over a payload span.
class Reader {
 public:
  explicit Reader(std::span<const uint8_t> data) : data_(data) {}

  bool Get8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = data_[pos_++];
    return true;
  }
  bool Get16(uint16_t* v) {
    if (pos_ + 2 > data_.size()) return false;
    *v = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return true;
  }
  bool Get32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    uint32_t r = 0;
    for (int i = 0; i < 4; ++i) r |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    *v = r;
    return true;
  }
  bool Get64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    uint64_t r = 0;
    for (int i = 0; i < 8; ++i) r |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    *v = r;
    return true;
  }
  bool GetI64(int64_t* v) {
    uint64_t u;
    if (!Get64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }

  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

void PutHeader(std::vector<uint8_t>* out, MessageKind kind,
               uint32_t payload_len) {
  Put32(out, kFrameMagic);
  Put8(out, kWireVersion);
  Put8(out, static_cast<uint8_t>(kind));
  Put16(out, 0);  // flags, reserved
  Put32(out, payload_len);
}

// Validates a complete frame and returns its payload span.
Status SplitFrame(std::span<const uint8_t> frame, MessageKind want_kind,
                  std::span<const uint8_t>* payload) {
  if (frame.size() < kFrameHeaderBytes) {
    return Status::InvalidArgument("frame shorter than header");
  }
  Reader r(frame);
  uint32_t magic, len;
  uint8_t version, kind;
  uint16_t flags;
  r.Get32(&magic);
  r.Get8(&version);
  r.Get8(&kind);
  r.Get16(&flags);
  r.Get32(&len);
  if (magic != kFrameMagic) return Status::Corruption("bad frame magic");
  if (version != kWireVersion) {
    return Status::NotSupported("unknown wire version");
  }
  if (kind != static_cast<uint8_t>(want_kind)) {
    return Status::InvalidArgument("unexpected message kind");
  }
  if (len > kMaxPayloadBytes) return Status::Corruption("payload too large");
  if (frame.size() != kFrameHeaderBytes + len) {
    return Status::InvalidArgument("frame length mismatch");
  }
  *payload = frame.subspan(kFrameHeaderBytes, len);
  return Status::OK();
}

}  // namespace

void EncodeRequest(const Request& req, std::vector<uint8_t>* out) {
  const size_t header_at = out->size();
  PutHeader(out, MessageKind::kRequest, 0);
  const size_t payload_at = out->size();
  Put64(out, req.id);
  Put8(out, static_cast<uint8_t>(req.type));
  Put8(out, static_cast<uint8_t>(req.mode));
  Put32(out, req.limit);
  Put32(out, req.deadline_us);
  for (int64_t a : req.args) PutI64(out, a);
  Put32(out, static_cast<uint32_t>(req.updates.size()));
  for (const UpdateOp& op : req.updates) {
    Put8(out, static_cast<uint8_t>(op.kind));
    PutI64(out, op.key);
    Put64(out, op.value);
    PutI64(out, op.aux);
  }
  // Backpatch the payload length now that it is known.
  const uint32_t len = static_cast<uint32_t>(out->size() - payload_at);
  for (int i = 0; i < 4; ++i) {
    (*out)[header_at + 8 + i] = static_cast<uint8_t>(len >> (8 * i));
  }
}

void EncodeResponse(const Response& resp, std::vector<uint8_t>* out) {
  const size_t header_at = out->size();
  PutHeader(out, MessageKind::kResponse, 0);
  const size_t payload_at = out->size();
  Put64(out, resp.id);
  Put8(out, static_cast<uint8_t>(resp.status));
  Put64(out, resp.count);
  Put32(out, static_cast<uint32_t>(resp.records.size()));
  for (const auto& rec : resp.records) {
    for (uint64_t w : rec) Put64(out, w);
  }
  Put32(out, static_cast<uint32_t>(resp.update_status.size()));
  for (uint8_t s : resp.update_status) Put8(out, s);
  const uint32_t len = static_cast<uint32_t>(out->size() - payload_at);
  for (int i = 0; i < 4; ++i) {
    (*out)[header_at + 8 + i] = static_cast<uint8_t>(len >> (8 * i));
  }
}

Status DecodeRequest(std::span<const uint8_t> frame, Request* req) {
  // Parse into *req directly: on failure the request id (parsed first)
  // survives when it was readable, so the server can answer kBadRequest
  // addressed to the right sequence slot. Only an OK return makes the
  // rest of *req meaningful.
  *req = Request{};
  std::span<const uint8_t> payload;
  Status s = SplitFrame(frame, MessageKind::kRequest, &payload);
  if (!s.ok()) return s;
  Reader r(payload);
  uint8_t type, mode;
  uint32_t n_updates;
  if (!r.Get64(&req->id) || !r.Get8(&type) || !r.Get8(&mode) ||
      !r.Get32(&req->limit) || !r.Get32(&req->deadline_us) ||
      !r.GetI64(&req->args[0]) || !r.GetI64(&req->args[1]) ||
      !r.GetI64(&req->args[2]) || !r.Get32(&n_updates)) {
    return Status::InvalidArgument("truncated request payload");
  }
  if (type > kMaxRequestType) {
    return Status::InvalidArgument("unknown request type");
  }
  if (mode > kMaxResultMode) {
    return Status::InvalidArgument("unknown result mode");
  }
  // 25 bytes per op; the count must match the remaining payload exactly.
  constexpr size_t kOpBytes = 1 + 8 + 8 + 8;
  if (r.remaining() != static_cast<size_t>(n_updates) * kOpBytes) {
    return Status::InvalidArgument("update count/payload mismatch");
  }
  req->type = static_cast<RequestType>(type);
  req->mode = static_cast<ResultMode>(mode);
  req->updates.reserve(n_updates);
  for (uint32_t i = 0; i < n_updates; ++i) {
    uint8_t kind;
    UpdateOp op;
    r.Get8(&kind);
    r.GetI64(&op.key);
    r.Get64(&op.value);
    r.GetI64(&op.aux);
    if (kind > static_cast<uint8_t>(UpdateOp::Kind::kDelete)) {
      return Status::InvalidArgument("unknown update op kind");
    }
    op.kind = static_cast<UpdateOp::Kind>(kind);
    req->updates.push_back(op);
  }
  return Status::OK();
}

Status DecodeResponse(std::span<const uint8_t> frame, Response* resp) {
  std::span<const uint8_t> payload;
  Status s = SplitFrame(frame, MessageKind::kResponse, &payload);
  if (!s.ok()) return s;
  Reader r(payload);
  uint8_t status;
  uint32_t n_records;
  Response out;
  if (!r.Get64(&out.id) || !r.Get8(&status) || !r.Get64(&out.count) ||
      !r.Get32(&n_records)) {
    return Status::InvalidArgument("truncated response payload");
  }
  if (status > static_cast<uint8_t>(WireStatus::kError)) {
    return Status::InvalidArgument("unknown wire status");
  }
  out.status = static_cast<WireStatus>(status);
  constexpr size_t kRecordBytes = 24;
  if (r.remaining() < static_cast<size_t>(n_records) * kRecordBytes + 4) {
    return Status::InvalidArgument("record count/payload mismatch");
  }
  out.records.reserve(n_records);
  for (uint32_t i = 0; i < n_records; ++i) {
    std::array<uint64_t, 3> rec;
    r.Get64(&rec[0]);
    r.Get64(&rec[1]);
    r.Get64(&rec[2]);
    out.records.push_back(rec);
  }
  uint32_t n_status;
  if (!r.Get32(&n_status) || r.remaining() != n_status) {
    return Status::InvalidArgument("update-status count/payload mismatch");
  }
  out.update_status.reserve(n_status);
  for (uint32_t i = 0; i < n_status; ++i) {
    uint8_t b;
    r.Get8(&b);
    out.update_status.push_back(b);
  }
  *resp = std::move(out);
  return Status::OK();
}

Status FrameScanner::Next(std::span<const uint8_t>* frame) {
  *frame = {};
  if (poisoned_) return Status::Corruption("frame stream poisoned");
  // Compact lazily: once everything handed out is consumed, drop it.
  if (consumed_ > 0 && consumed_ == buf_.size()) {
    buf_.clear();
    consumed_ = 0;
  } else if (consumed_ > (1u << 20)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(consumed_));
    consumed_ = 0;
  }
  const size_t avail = buf_.size() - consumed_;
  if (avail < kFrameHeaderBytes) return Status::OK();
  const uint8_t* p = buf_.data() + consumed_;
  auto le32 = [](const uint8_t* b) {
    return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
           (static_cast<uint32_t>(b[2]) << 16) |
           (static_cast<uint32_t>(b[3]) << 24);
  };
  const uint32_t magic = le32(p);
  const uint32_t len = le32(p + 8);
  if (magic != kFrameMagic || p[4] != kWireVersion ||
      len > kMaxPayloadBytes) {
    poisoned_ = true;
    return Status::Corruption("bad frame header in stream");
  }
  const size_t total = kFrameHeaderBytes + len;
  if (avail < total) return Status::OK();
  *frame = std::span<const uint8_t>(p, total);
  consumed_ += total;
  return Status::OK();
}

}  // namespace serve
}  // namespace ccidx
