// Codec for the serving wire protocol (frame.h): encode/decode Request
// and Response frames, and reassemble frames out of an arbitrary byte
// stream (FrameScanner, for the TCP transport). Encoding is fixed-width
// little-endian; decoding validates magic, version, kind, declared
// length, enum ranges and payload arithmetic before touching the heap,
// and returns checked Status errors — a malformed frame can reject a
// request but never corrupt the server.

#ifndef CCIDX_SERVE_CODEC_H_
#define CCIDX_SERVE_CODEC_H_

#include <cstdint>
#include <span>
#include <vector>

#include "ccidx/common/status.h"
#include "ccidx/serve/frame.h"

namespace ccidx {
namespace serve {

/// Appends one complete request frame (header + payload) to `out`.
void EncodeRequest(const Request& req, std::vector<uint8_t>* out);

/// Appends one complete response frame (header + payload) to `out`.
void EncodeResponse(const Response& resp, std::vector<uint8_t>* out);

/// Decodes one complete frame that must be a request. `frame` is the
/// whole frame including header (as produced by EncodeRequest or cut by
/// FrameScanner).
Status DecodeRequest(std::span<const uint8_t> frame, Request* req);

/// Decodes one complete frame that must be a response.
Status DecodeResponse(std::span<const uint8_t> frame, Response* resp);

/// Splits an incoming byte stream into complete frames. Feed() buffers
/// arbitrary chunks (a TCP read may end mid-header or mid-payload);
/// Next() hands out one complete frame at a time (a view valid until the
/// next Feed/Next call). A corrupt header (bad magic/version or an
/// oversized declared length) poisons the scanner — the connection must
/// be dropped, since resynchronizing inside a binary stream is guessing.
class FrameScanner {
 public:
  void Feed(std::span<const uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  /// Returns OK with *frame empty when more bytes are needed; OK with a
  /// complete frame otherwise. Corruption is sticky.
  Status Next(std::span<const uint8_t>* frame);

  /// Bytes buffered but not yet returned as frames.
  size_t pending_bytes() const { return buf_.size() - consumed_; }

 private:
  std::vector<uint8_t> buf_;
  size_t consumed_ = 0;  // prefix of buf_ already handed out
  bool poisoned_ = false;
};

}  // namespace serve
}  // namespace ccidx

#endif  // CCIDX_SERVE_CODEC_H_
