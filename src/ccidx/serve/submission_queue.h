// SubmissionQueue: the bounded MPMC admission queue between transports
// and the dispatcher (DESIGN.md §12).
//
// Admission policy — shed, don't collapse: the queue has a fixed
// capacity ring and two watermarks. Below the low watermark the server
// is kNormal; between low and high it is kBusy (still admitting, but
// the level listener throttles speculative I/O so demand reads own the
// device); at or above the high watermark new submissions are rejected
// immediately with kOverloaded (TryPush returns kShed) — the client
// learns in microseconds instead of queueing into a latency collapse.
// Accepted requests carry their admission time and absolute deadline;
// PopBatch drops expired submissions at dequeue (they are returned
// separately so the dispatcher can answer kDeadlineExceeded without
// executing them).
//
// The level listener fires on watermark *transitions* (edge-triggered,
// at most one callback per crossing) and is how the admission controller
// throttles Pager::set_speculation_budget() — the PR 7 follow-on. The
// transition is detected and latched under the queue lock, but the
// callback itself runs AFTER the lock is released: listeners may call
// queue accessors (depth(), level()) without self-deadlocking. When two
// threads race opposite crossings, each fires exactly one callback with
// its own transition's level, but the two callbacks' arrival order is
// best-effort — listeners that care should read level() (the latest
// state), which is exactly what makes them deadlock-prone under the old
// fire-under-lock scheme.
//
// Implementation: a mutex-guarded ring. At serving batch sizes the lock
// is held for pointer moves only; fairness and the watermark accounting
// matter far more here than lock-freedom, and the dispatcher drains in
// batches so producers rarely contend with more than one consumer.

#ifndef CCIDX_SERVE_SUBMISSION_QUEUE_H_
#define CCIDX_SERVE_SUBMISSION_QUEUE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "ccidx/serve/frame.h"

namespace ccidx {
namespace serve {

class Session;

/// One admitted request waiting for dispatch.
struct Submission {
  Request req;
  Session* session = nullptr;
  std::chrono::steady_clock::time_point admit_time{};
  /// Absolute deadline (admit_time + req.deadline_us); time_point::max()
  /// when the request carries none.
  std::chrono::steady_clock::time_point deadline{
      std::chrono::steady_clock::time_point::max()};
};

enum class Admission : uint8_t { kAdmitted = 0, kShed = 1 };

/// Watermark level, exported to the admission controller.
enum class QueueLevel : uint8_t { kNormal = 0, kBusy = 1, kOverloaded = 2 };

class SubmissionQueue {
 public:
  /// `capacity` bounds queued submissions; shedding starts at
  /// `high_watermark` (<= capacity) and the busy throttle engages at
  /// `low_watermark` (< high). A queue that is never above low behaves
  /// exactly like an unbounded one.
  SubmissionQueue(size_t capacity, size_t low_watermark,
                  size_t high_watermark)
      : capacity_(capacity),
        low_(low_watermark),
        high_(high_watermark <= capacity ? high_watermark : capacity) {
    ring_.resize(capacity_);
  }

  SubmissionQueue(const SubmissionQueue&) = delete;
  SubmissionQueue& operator=(const SubmissionQueue&) = delete;

  /// Installed by the server; called (after the queue lock is released —
  /// accessors like depth() are safe inside) whenever the watermark level
  /// changes.
  void set_level_listener(std::function<void(QueueLevel)> listener) {
    std::lock_guard lock(mu_);
    listener_ = std::move(listener);
  }

  /// Admit or shed. O(1); never blocks. Sheds when size >= high
  /// watermark. A closed queue also rejects, but that is shutdown
  /// bookkeeping, not overload — it counts in rejected_closed(), not
  /// shed(), so the overload shed *rate* stays meaningful while clients
  /// drain against a closing server.
  Admission TryPush(Submission s) {
    PendingLevel pending;
    {
      std::lock_guard lock(mu_);
      if (closed_) {
        rejected_closed_.fetch_add(1, std::memory_order_relaxed);
        return Admission::kShed;
      }
      if (size_ >= high_) {
        shed_.fetch_add(1, std::memory_order_relaxed);
        return Admission::kShed;
      }
      ring_[(head_ + size_) % capacity_] = std::move(s);
      ++size_;
      admitted_.fetch_add(1, std::memory_order_relaxed);
      NoteDepthLocked(size_);
      pending = UpdateLevelLocked();
    }
    cv_.notify_one();
    if (pending.fn) pending.fn(pending.level);
    return Admission::kAdmitted;
  }

  /// Pops up to `max_n` submissions. Expired submissions (deadline < now
  /// at dequeue) are moved to `*expired` and do not count toward max_n —
  /// the dispatcher answers them without executing. At most
  /// kMaxExpiredPerPop expired submissions move per call, bounding the
  /// lock hold under a mass-expiry spike (a backlog of thousands of
  /// expired entries must not stall every producer behind mu_ for one
  /// giant drain); the dispatcher loops, so the backlog still clears, in
  /// lock-fair slices. Blocks up to `wait` for the first item; returns
  /// the number of live submissions appended to `*out` (0 on timeout,
  /// close, or an expired-bound slice).
  static constexpr size_t kMaxExpiredPerPop = 64;
  size_t PopBatch(std::vector<Submission>* out,
                  std::vector<Submission>* expired, size_t max_n,
                  std::chrono::nanoseconds wait) {
    PendingLevel pending;
    size_t popped = 0;
    {
      std::unique_lock lock(mu_);
      if (size_ == 0 && wait.count() > 0) {
        cv_.wait_for(lock, wait, [this] { return size_ > 0 || closed_; });
      }
      size_t expired_moved = 0;
      const auto now = std::chrono::steady_clock::now();
      while (size_ > 0 && popped < max_n &&
             expired_moved < kMaxExpiredPerPop) {
        Submission& s = ring_[head_];
        if (s.deadline < now) {
          expired->push_back(std::move(s));
          deadline_dropped_.fetch_add(1, std::memory_order_relaxed);
          ++expired_moved;  // a dropped request frees a slot for a live one
        } else {
          out->push_back(std::move(s));
          ++popped;
        }
        head_ = (head_ + 1) % capacity_;
        --size_;
      }
      pending = UpdateLevelLocked();
    }
    if (pending.fn) pending.fn(pending.level);
    return popped;
  }

  /// Unblocks poppers and sheds all future pushes.
  void Close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t depth() const {
    std::lock_guard lock(mu_);
    return size_;
  }
  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }
  QueueLevel level() const {
    std::lock_guard lock(mu_);
    return level_;
  }

  // --- counters (relaxed; exact under quiescence) -----------------------
  uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }
  /// Pushes rejected because the queue was closed (shutdown), NOT because
  /// of overload — kept out of shed() so shed-rate assertions (the
  /// serving-smoke CI bar) are not inflated by clients racing Close().
  uint64_t rejected_closed() const {
    return rejected_closed_.load(std::memory_order_relaxed);
  }
  uint64_t deadline_dropped() const {
    return deadline_dropped_.load(std::memory_order_relaxed);
  }

  /// Queue-depth histogram sampled at every admission: bucket i counts
  /// admissions that found floor(log2(depth)) == i (bucket 0 = depth 1).
  /// The load driver folds this into its JSON output.
  static constexpr size_t kDepthBuckets = 24;
  std::vector<uint64_t> depth_histogram() const {
    std::vector<uint64_t> out(kDepthBuckets);
    for (size_t i = 0; i < kDepthBuckets; ++i) {
      out[i] = depth_hist_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  void NoteDepthLocked(size_t depth) {
    size_t bucket = 0;
    while ((size_t{2} << bucket) <= depth && bucket + 1 < kDepthBuckets) {
      ++bucket;
    }
    depth_hist_[bucket].fetch_add(1, std::memory_order_relaxed);
  }

  /// A latched watermark transition whose callback still has to run (after
  /// mu_ is released). fn is empty when no transition happened.
  struct PendingLevel {
    std::function<void(QueueLevel)> fn;
    QueueLevel level = QueueLevel::kNormal;
  };

  // Detects and latches a level transition under mu_; the caller fires the
  // returned callback after unlocking. level_ changes only here, under the
  // lock, so exactly one caller observes (and reports) each crossing —
  // the edge-trigger guarantee survives the deferred fire.
  PendingLevel UpdateLevelLocked() {
    QueueLevel next = size_ >= high_  ? QueueLevel::kOverloaded
                      : size_ >= low_ ? QueueLevel::kBusy
                                      : QueueLevel::kNormal;
    PendingLevel pending;
    if (next != level_) {
      level_ = next;
      if (listener_) {
        pending.fn = listener_;  // snapshot: set_level_listener may race
        pending.level = next;
      }
    }
    return pending;
  }

  const size_t capacity_;
  const size_t low_;
  const size_t high_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Submission> ring_;  // guarded by mu_
  size_t head_ = 0;               // guarded by mu_
  size_t size_ = 0;               // guarded by mu_
  bool closed_ = false;           // guarded by mu_
  QueueLevel level_ = QueueLevel::kNormal;         // guarded by mu_
  std::function<void(QueueLevel)> listener_;       // guarded by mu_

  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> rejected_closed_{0};
  std::atomic<uint64_t> deadline_dropped_{0};
  std::atomic<uint64_t> depth_hist_[kDepthBuckets] = {};
};

}  // namespace serve
}  // namespace ccidx

#endif  // CCIDX_SERVE_SUBMISSION_QUEUE_H_
