#include "ccidx/serve/server.h"

#include "ccidx/serve/codec.h"

namespace ccidx {
namespace serve {

Server::Server(const ServeTables& tables, const ServerOptions& opts)
    : tables_(tables),
      opts_(opts),
      queue_(opts.queue_capacity, opts.low_watermark, opts.high_watermark),
      query_exec_(opts.query_threads),
      update_exec_(opts.update_threads),
      dispatcher_(tables, opts, &queue_, &query_exec_, &update_exec_) {
  // Admission controller (the PR 7 follow-on): watermark transitions
  // throttle the speculation budget. kNormal restores the configured
  // ceiling; kBusy/kOverloaded zero it so demand reads own the device.
  // The listener runs under the queue lock — one relaxed atomic store,
  // per the submission-queue contract.
  if (tables_.pager != nullptr) {
    Pager* pager = tables_.pager;
    queue_.set_level_listener([pager](QueueLevel level) {
      pager->set_speculation_budget(
          level == QueueLevel::kNormal ? pager->base_speculation_budget()
                                       : 0);
    });
  }
}

Server::~Server() { Stop(); }

void Server::Start() {
  if (running_.exchange(true)) return;
  dispatcher_.Start();
}

void Server::Stop() {
  if (!running_.exchange(false)) return;
  queue_.Close();
  dispatcher_.Stop();
  // Serving is over: hand the speculation budget back to its configured
  // value so post-serving work (rebuilds, benches) is not left throttled
  // by whatever level the queue drained at.
  if (tables_.pager != nullptr) {
    tables_.pager->set_speculation_budget(
        tables_.pager->base_speculation_budget());
  }
}

Session* Server::OpenSession(Session::Writer writer) {
  std::lock_guard lock(sessions_mu_);
  sessions_.push_back(std::make_unique<Session>(
      next_session_id_++, opts_.session_credits, std::move(writer)));
  return sessions_.back().get();
}

void Server::OnFrame(Session* session, std::span<const uint8_t> frame) {
  Request req;
  Status st = DecodeRequest(frame, &req);
  if (!st.ok()) {
    bad_frames_.fetch_add(1, std::memory_order_relaxed);
    // Answer when the id was parseable; an id-less frame cannot be
    // addressed into the session's ordered stream and is dropped (a TCP
    // transport additionally poisons the connection via FrameScanner).
    if (req.id != 0) {
      Response resp;
      resp.id = req.id;
      resp.status = WireStatus::kBadRequest;
      session->Deliver(std::move(resp), /*return_credit=*/false);
    }
    return;
  }
  if (!session->AcquireCredit()) {
    no_credit_.fetch_add(1, std::memory_order_relaxed);
    Response resp;
    resp.id = req.id;
    resp.status = WireStatus::kNoCredit;
    session->Deliver(std::move(resp), /*return_credit=*/false);
    return;
  }
  Submission s;
  s.session = session;
  s.admit_time = std::chrono::steady_clock::now();
  if (req.deadline_us > 0) {
    s.deadline = s.admit_time + std::chrono::microseconds(req.deadline_us);
  }
  const uint64_t id = req.id;
  s.req = std::move(req);
  if (queue_.TryPush(std::move(s)) == Admission::kShed) {
    Response resp;
    resp.id = id;
    resp.status = WireStatus::kOverloaded;
    session->Deliver(std::move(resp));  // returns the credit
  }
}

ServerStats Server::stats() const {
  ServerStats s;
  s.admitted = queue_.admitted();
  s.shed = queue_.shed();
  s.rejected_closed = queue_.rejected_closed();
  s.deadline_dropped = queue_.deadline_dropped();
  s.bad_frames = bad_frames_.load(std::memory_order_relaxed);
  s.no_credit = no_credit_.load(std::memory_order_relaxed);
  s.dispatch = dispatcher_.stats();
  s.reader_gate_wait = query_exec_.reader_gate_wait_histogram();
  s.queue_depth_hist = queue_.depth_histogram();
  return s;
}

}  // namespace serve
}  // namespace ccidx
