// Localhost TCP transport (DESIGN.md §12): an epoll event loop that
// accepts connections on 127.0.0.1, reassembles frames with
// FrameScanner, and feeds them to Server::OnFrame. One connection = one
// session. Response frames from the session writer go into a
// per-connection outbox (the writer only moves bytes and arms EPOLLOUT —
// it never blocks and never re-enters the engine, per the session
// contract).
//
// Lifetime: connections are kept alive until the transport stops, even
// after the peer disconnects — the dispatcher may still Deliver into a
// dead session's writer, which then drops the bytes. Teardown order is
// transport Stop() (no more OnFrame), then Server::Stop(), then
// destruction of either.
//
// TcpClient is the blocking client used by tests and the load driver:
// same codec, same id sequencing as LoopbackConnection, over a real
// socket.

#ifndef CCIDX_SERVE_TRANSPORT_TCP_H_
#define CCIDX_SERVE_TRANSPORT_TCP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "ccidx/common/status.h"
#include "ccidx/serve/codec.h"
#include "ccidx/serve/frame.h"
#include "ccidx/serve/server.h"

namespace ccidx {
namespace serve {

class TcpServerTransport {
 public:
  explicit TcpServerTransport(Server* server);
  ~TcpServerTransport();

  TcpServerTransport(const TcpServerTransport&) = delete;
  TcpServerTransport& operator=(const TcpServerTransport&) = delete;

  /// Binds 127.0.0.1 on an ephemeral port and starts the event loop.
  /// Fails (IoError) when sockets/epoll are not usable in this
  /// environment — callers skip, they don't crash.
  Status Start();

  /// Stops accepting, closes all connections, joins the event loop.
  void Stop();

  /// Bound port; valid after Start() succeeds.
  uint16_t port() const { return port_; }

  uint64_t accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection;

  void Loop();
  void Accept();
  void ReadReady(Connection* conn);
  void WriteReady(Connection* conn);
  void CloseConnection(Connection* conn);

  Server* const server_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: Stop() kicks the loop
  uint16_t port_ = 0;

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> accepted_{0};

  std::mutex conns_mu_;
  // Never erased while running: sessions hold writer callbacks into
  // these objects, and the dispatcher may deliver after disconnect.
  std::vector<std::unique_ptr<Connection>> conns_;  // guarded by conns_mu_
};

/// Blocking TCP client: Send assigns the next request id and writes the
/// frame; Receive blocks for the next complete response frame. One
/// socket, one session, ordered responses.
class TcpClient {
 public:
  TcpClient() = default;
  ~TcpClient() { Close(); }

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  Status Connect(uint16_t port);
  void Close();

  /// Returns the id assigned to the request, or 0 on a write error.
  uint64_t Send(Request req);
  Status Receive(Response* out);
  Status Call(Request req, Response* out);

 private:
  int fd_ = -1;
  uint64_t next_id_ = 1;
  std::vector<uint8_t> encode_buf_;
  FrameScanner scanner_;
};

}  // namespace serve
}  // namespace ccidx

#endif  // CCIDX_SERVE_TRANSPORT_TCP_H_
