#include "ccidx/serve/transport_tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ccidx {
namespace serve {

namespace {
constexpr size_t kReadChunk = 64 * 1024;
}  // namespace

struct TcpServerTransport::Connection {
  int fd = -1;
  Session* session = nullptr;
  FrameScanner scanner;

  std::mutex mu;
  std::vector<uint8_t> outbox;   // guarded by mu
  size_t out_off = 0;            // guarded by mu
  bool epollout_armed = false;   // guarded by mu
  bool closed = false;           // guarded by mu
};

TcpServerTransport::TcpServerTransport(Server* server) : server_(server) {}

TcpServerTransport::~TcpServerTransport() { Stop(); }

Status TcpServerTransport::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IoError("socket() failed");
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 128) < 0) {
    Stop();
    return Status::IoError("bind/listen on 127.0.0.1 failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    Stop();
    return Status::IoError("getsockname failed");
  }
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    Stop();
    return Status::IoError("epoll/eventfd unavailable");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = nullptr;  // nullptr = listener
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.ptr = this;  // this = wakeup
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  running_.store(true);
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void TcpServerTransport::Stop() {
  if (running_.exchange(false)) {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard lock(conns_mu_);
    for (auto& conn : conns_) {
      std::lock_guard clock(conn->mu);
      if (!conn->closed) {
        ::close(conn->fd);
        conn->closed = true;
      }
    }
    conns_.clear();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_), listen_fd_ = -1;
  if (wake_fd_ >= 0) ::close(wake_fd_), wake_fd_ = -1;
  if (epoll_fd_ >= 0) ::close(epoll_fd_), epoll_fd_ = -1;
}

void TcpServerTransport::Loop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (running_.load(std::memory_order_relaxed)) {
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, /*timeout_ms=*/200);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    for (int i = 0; i < n; ++i) {
      void* ptr = events[i].data.ptr;
      if (ptr == nullptr) {
        Accept();
      } else if (ptr == this) {
        uint64_t drained;
        [[maybe_unused]] ssize_t r =
            ::read(wake_fd_, &drained, sizeof(drained));
      } else {
        auto* conn = static_cast<Connection*>(ptr);
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          CloseConnection(conn);
          continue;
        }
        if (events[i].events & EPOLLIN) ReadReady(conn);
        if (events[i].events & EPOLLOUT) WriteReady(conn);
      }
    }
  }
}

void TcpServerTransport::Accept() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or error: nothing more to accept
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    Connection* raw = conn.get();
    raw->fd = fd;
    // The writer queues bytes and arms EPOLLOUT; epoll_ctl is
    // thread-safe, so the dispatcher thread can arm directly without
    // bouncing through the event loop.
    raw->session = server_->OpenSession([this, raw](
                                            std::span<const uint8_t> bytes) {
      bool arm = false;
      {
        std::lock_guard lock(raw->mu);
        if (raw->closed) return;  // peer gone: drop the response bytes
        raw->outbox.insert(raw->outbox.end(), bytes.begin(), bytes.end());
        if (!raw->epollout_armed) {
          raw->epollout_armed = true;
          arm = true;
        }
      }
      if (arm) {
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLOUT;
        ev.data.ptr = raw;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, raw->fd, &ev);
      }
    });
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = raw;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lock(conns_mu_);
    conns_.push_back(std::move(conn));
  }
}

void TcpServerTransport::ReadReady(Connection* conn) {
  uint8_t buf[kReadChunk];
  for (;;) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n == 0) {
      CloseConnection(conn);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConnection(conn);
      return;
    }
    conn->scanner.Feed({buf, static_cast<size_t>(n)});
    for (;;) {
      std::span<const uint8_t> frame;
      Status st = conn->scanner.Next(&frame);
      if (!st.ok()) {
        // Corrupt stream: the scanner is poisoned, drop the peer.
        CloseConnection(conn);
        return;
      }
      if (frame.empty()) break;  // need more bytes
      server_->OnFrame(conn->session, frame);
    }
  }
}

void TcpServerTransport::WriteReady(Connection* conn) {
  std::unique_lock lock(conn->mu);
  if (conn->closed) return;
  while (conn->out_off < conn->outbox.size()) {
    ssize_t n = ::send(conn->fd, conn->outbox.data() + conn->out_off,
                       conn->outbox.size() - conn->out_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // stay armed
      if (errno == EINTR) continue;
      lock.unlock();
      CloseConnection(conn);
      return;
    }
    conn->out_off += static_cast<size_t>(n);
  }
  conn->outbox.clear();
  conn->out_off = 0;
  conn->epollout_armed = false;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = conn;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void TcpServerTransport::CloseConnection(Connection* conn) {
  std::lock_guard lock(conn->mu);
  if (conn->closed) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conn->closed = true;
  // The Connection object itself stays in conns_ (and the Session in the
  // server) until Stop(): in-flight dispatches may still Deliver here.
}

Status TcpClient::Connect(uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Status::IoError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Close();
    return Status::IoError("connect to 127.0.0.1 failed");
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

void TcpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

uint64_t TcpClient::Send(Request req) {
  if (fd_ < 0) return 0;
  req.id = next_id_++;
  encode_buf_.clear();
  EncodeRequest(req, &encode_buf_);
  size_t off = 0;
  while (off < encode_buf_.size()) {
    ssize_t n = ::send(fd_, encode_buf_.data() + off,
                       encode_buf_.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return 0;
    }
    off += static_cast<size_t>(n);
  }
  return req.id;
}

Status TcpClient::Receive(Response* out) {
  if (fd_ < 0) return Status::IoError("not connected");
  uint8_t buf[kReadChunk];
  for (;;) {
    std::span<const uint8_t> frame;
    Status st = scanner_.Next(&frame);
    if (!st.ok()) return st;
    if (!frame.empty()) return DecodeResponse(frame, out);
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) return Status::IoError("server closed connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("recv failed");
    }
    scanner_.Feed({buf, static_cast<size_t>(n)});
  }
}

Status TcpClient::Call(Request req, Response* out) {
  if (Send(std::move(req)) == 0) return Status::IoError("send failed");
  return Receive(out);
}

}  // namespace serve
}  // namespace ccidx
