// Dispatcher: drains the submission queue into executor batches with
// adaptive batch formation (DESIGN.md §12).
//
// Batch-formation policy. The dispatcher pops up to `target` submissions
// per round; only the *first* pop of an idle round blocks (batch_wait),
// growth past the first takes whatever backlog exists and never waits.
// `target` tracks an EWMA of the observed load (items popped + backlog
// remaining after the pop — a Little's-law proxy for arrival rate ×
// batch service time), clamped to [1, max_batch]:
//
//   * low load: the backlog is empty, the EWMA decays to ~1, and each
//     request dispatches alone the moment it arrives — minimum latency;
//   * high load: the backlog is deep, the EWMA rises to the cap, and
//     each RunBatch amortizes its gate entry + worker wake over up to
//     max_batch queries — maximum throughput.
//
// Batch-admission hook: when the epoch gate has a writer active or
// queued (QueryExecutor::gate_busy()), a reader batch entered now would
// park at the gate; the dispatcher instead takes one more non-blocking
// drain of the queue, converting gate wait into batch growth.
//
// Within one popped batch, updates (flattened across every kUpdateBatch
// request) run first as one UpdateExecutor write epoch, then queries run
// as one QueryExecutor read batch — so a client that pipelines an update
// before a query into the same batch reads its own write. Expired
// submissions answer kDeadlineExceeded without executing; responses
// deliver through each submission's Session (which orders them per
// client).

#ifndef CCIDX_SERVE_DISPATCHER_H_
#define CCIDX_SERVE_DISPATCHER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "ccidx/query/executor.h"
#include "ccidx/query/update_executor.h"
#include "ccidx/serve/catalog.h"
#include "ccidx/serve/submission_queue.h"

namespace ccidx {
namespace serve {

class Dispatcher {
 public:
  struct Stats {
    uint64_t batches = 0;          // executor rounds dispatched
    uint64_t queries = 0;          // query requests executed
    uint64_t update_ops = 0;       // flattened update ops applied
    uint64_t pings = 0;
    uint64_t expired = 0;          // answered kDeadlineExceeded
    uint64_t bad_requests = 0;     // absent table / bad operands
    uint64_t batch_size_sum = 0;   // popped submissions across batches
    uint64_t max_batch_seen = 0;
    size_t target_now = 1;         // current adaptive target
    /// Accepted-request latency (admission to response delivery, us),
    /// one sample per executed submission. This is the latency the
    /// admission controller bounds — it excludes client-side scheduling,
    /// so the load driver's tail assertions hold on oversubscribed CI
    /// hosts. Unbounded growth (8 B/request): meant for the driver and
    /// tests, not a long-lived deployment.
    std::vector<double> accept_latency_us;
  };

  Dispatcher(const ServeTables& tables, const ServerOptions& opts,
             SubmissionQueue* queue, QueryExecutor* query_exec,
             UpdateExecutor* update_exec)
      : tables_(tables),
        opts_(opts),
        queue_(queue),
        query_exec_(query_exec),
        update_exec_(update_exec) {}

  ~Dispatcher() { Stop(); }

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Starts the dispatch thread. The queue must outlive Stop().
  void Start();

  /// Joins the dispatch thread after the queue is closed and drained.
  /// (Close the queue first — Stop() itself does not close it, so a
  /// server can drain in-flight work before stopping.)
  void Stop();

  Stats stats() const;

 private:
  void Loop();
  void DispatchBatch(std::vector<Submission>* batch);
  /// Executes one query submission into *resp; returns the engine Status
  /// (also mapped into resp->status).
  Status RunOne(const Submission& s, Response* resp) const;

  const ServeTables tables_;
  const ServerOptions opts_;
  SubmissionQueue* const queue_;
  QueryExecutor* const query_exec_;
  UpdateExecutor* const update_exec_;

  std::thread thread_;
  std::atomic<bool> started_{false};

  // Stats counters (relaxed; exact once the dispatcher is joined).
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> update_ops_{0};
  std::atomic<uint64_t> pings_{0};
  std::atomic<uint64_t> expired_{0};
  std::atomic<uint64_t> bad_requests_{0};
  std::atomic<uint64_t> batch_size_sum_{0};
  std::atomic<uint64_t> max_batch_seen_{0};
  std::atomic<size_t> target_now_{1};

  // Written by the dispatch thread, snapshotted by stats().
  mutable std::mutex lat_mu_;
  std::vector<double> accept_latency_us_;  // guarded by lat_mu_
};

}  // namespace serve
}  // namespace ccidx

#endif  // CCIDX_SERVE_DISPATCHER_H_
