// Server: the serving front-end over QueryExecutor / UpdateExecutor
// (DESIGN.md §12). Owns the admission pipeline:
//
//   transport -> OnFrame (decode, credit, deadline) -> SubmissionQueue
//            -> Dispatcher (adaptive batches) -> executors -> Session
//
// and the admission controller: the queue's watermark level listener
// throttles Pager::set_speculation_budget() — kNormal restores the
// configured budget, kBusy/kOverloaded drop it to 0 so speculative
// sibling fetches stop competing with demand reads exactly when the
// backlog says the device is the bottleneck (the PR 7 follow-on).
//
// Shutdown order is the session-lifetime contract (§12): Stop() closes
// the queue (new pushes shed), the dispatcher drains what is left and
// joins, and only then may sessions be destroyed — so a Submission's
// Session* never outlives its target. Transports must stop feeding
// OnFrame before the server is destroyed.

#ifndef CCIDX_SERVE_SERVER_H_
#define CCIDX_SERVE_SERVER_H_

#include <chrono>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "ccidx/query/executor.h"
#include "ccidx/query/update_executor.h"
#include "ccidx/serve/catalog.h"
#include "ccidx/serve/dispatcher.h"
#include "ccidx/serve/session.h"
#include "ccidx/serve/submission_queue.h"

namespace ccidx {
namespace serve {

/// Snapshot of the server's serving counters.
struct ServerStats {
  // Admission (queue).
  uint64_t admitted = 0;
  uint64_t shed = 0;            // overload sheds only (kOverloaded policy)
  uint64_t rejected_closed = 0; // pushes refused after Stop() closed the queue
  uint64_t deadline_dropped = 0;
  // Rejections before the queue.
  uint64_t bad_frames = 0;  // undecodable; dropped (or kBadRequest'd)
  uint64_t no_credit = 0;
  // Dispatch.
  Dispatcher::Stats dispatch;
  // Gate wait the serving read path paid (cumulative histogram).
  WaitHistogram reader_gate_wait;
  // Queue depth histogram (log2 buckets, sampled at admission).
  std::vector<uint64_t> queue_depth_hist;
};

class Server {
 public:
  Server(const ServeTables& tables, const ServerOptions& opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Starts the dispatcher (idempotent). Transports may begin feeding
  /// OnFrame once this returns.
  void Start();

  /// Closes the queue, drains in-flight work, joins the dispatcher.
  /// Sessions stay valid until destruction. Idempotent.
  void Stop();

  /// Opens a session. The writer receives encoded response frames in
  /// request-id order (see session.h for what it may do). The session
  /// lives until the server is destroyed.
  Session* OpenSession(Session::Writer writer);

  /// Transport entry point: one complete frame from `session`'s client.
  /// Decodes, applies flow control and admission, and either enqueues
  /// the request or answers the rejection through the session. Safe from
  /// any thread.
  void OnFrame(Session* session, std::span<const uint8_t> frame);

  ServerStats stats() const;

  // Wired components, exposed for tests and the load driver.
  SubmissionQueue* queue() { return &queue_; }
  QueryExecutor* query_executor() { return &query_exec_; }
  UpdateExecutor* update_executor() { return &update_exec_; }
  const ServerOptions& options() const { return opts_; }

 private:
  const ServeTables tables_;
  const ServerOptions opts_;

  SubmissionQueue queue_;
  QueryExecutor query_exec_;
  UpdateExecutor update_exec_;
  Dispatcher dispatcher_;

  std::mutex sessions_mu_;
  std::vector<std::unique_ptr<Session>> sessions_;  // guarded by sessions_mu_
  uint64_t next_session_id_ = 1;                    // guarded by sessions_mu_

  std::atomic<uint64_t> bad_frames_{0};
  std::atomic<uint64_t> no_credit_{0};
  std::atomic<bool> running_{false};
};

}  // namespace serve
}  // namespace ccidx

#endif  // CCIDX_SERVE_SERVER_H_
