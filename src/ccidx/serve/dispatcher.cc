#include "ccidx/serve/dispatcher.h"

#include <algorithm>
#include <cmath>

#include "ccidx/query/sink.h"
#include "ccidx/serve/session.h"

namespace ccidx {
namespace serve {
namespace {

// Record converters: every wire record is three 64-bit words.
std::array<uint64_t, 3> ToRecord(const Point& p) {
  return {static_cast<uint64_t>(p.x), static_cast<uint64_t>(p.y), p.id};
}
std::array<uint64_t, 3> ToRecord(const BtEntry& e) {
  return {static_cast<uint64_t>(e.key), e.value,
          static_cast<uint64_t>(e.aux)};
}
std::array<uint64_t, 3> ToRecord(const Interval& iv) {
  return {static_cast<uint64_t>(iv.lo), static_cast<uint64_t>(iv.hi), iv.id};
}

// Runs `run(sink)` with the sink the request's result mode asks for and
// materializes the answer into *resp — the serving dual of the PR 2 sink
// taxonomy. The sink lives on the executing worker, exactly like
// QueryExecutor's sink_factory contract.
template <typename T, typename RunFn>
Status RunWithMode(const Request& req, Response* resp, RunFn&& run) {
  switch (req.mode) {
    case ResultMode::kRecords: {
      std::vector<T> results;
      VectorSink<T> sink(&results);
      Status s = run(&sink);
      if (!s.ok()) return s;
      resp->count = results.size();
      resp->records.reserve(results.size());
      for (const T& r : results) resp->records.push_back(ToRecord(r));
      return s;
    }
    case ResultMode::kCount: {
      CountSink<T> sink;
      Status s = run(&sink);
      if (s.ok()) resp->count = sink.count();
      return s;
    }
    case ResultMode::kExists: {
      ExistsSink<T> sink;
      Status s = run(&sink);
      if (s.ok()) resp->count = sink.exists() ? 1 : 0;
      return s;
    }
    case ResultMode::kLimit: {
      LimitSink<T> sink(req.limit);
      Status s = run(&sink);
      if (!s.ok()) return s;
      resp->count = sink.results().size();
      resp->records.reserve(sink.results().size());
      for (const T& r : sink.results()) resp->records.push_back(ToRecord(r));
      return s;
    }
  }
  return Status::InvalidArgument("unknown result mode");
}

}  // namespace

void Dispatcher::Start() {
  if (started_.exchange(true)) return;
  thread_ = std::thread([this] { Loop(); });
}

void Dispatcher::Stop() {
  if (!started_.load()) return;
  if (thread_.joinable()) thread_.join();
  started_.store(false);
}

Dispatcher::Stats Dispatcher::stats() const {
  Stats s;
  s.batches = batches_.load(std::memory_order_relaxed);
  s.queries = queries_.load(std::memory_order_relaxed);
  s.update_ops = update_ops_.load(std::memory_order_relaxed);
  s.pings = pings_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  s.batch_size_sum = batch_size_sum_.load(std::memory_order_relaxed);
  s.max_batch_seen = max_batch_seen_.load(std::memory_order_relaxed);
  s.target_now = target_now_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(lat_mu_);
    s.accept_latency_us = accept_latency_us_;
  }
  return s;
}

void Dispatcher::Loop() {
  std::vector<Submission> batch;
  std::vector<Submission> expired;
  double load_ewma = 1.0;
  size_t target = opts_.fixed_batch > 0 ? opts_.fixed_batch : 1;
  for (;;) {
    batch.clear();
    expired.clear();
    size_t got = queue_->PopBatch(&batch, &expired, target, opts_.batch_wait);
    // Batch-admission hook: a writer is draining at the gate, so a read
    // batch entered now would park. Convert that wait into batch growth
    // with one more non-blocking drain (adaptive mode only — the pinned
    // comparison leg must stay pinned).
    if (got > 0 && opts_.fixed_batch == 0 && got < opts_.max_batch &&
        query_exec_->gate_busy()) {
      got += queue_->PopBatch(&batch, &expired, opts_.max_batch - got,
                              std::chrono::nanoseconds{0});
    }
    // Deadline-expired submissions answer without executing.
    for (Submission& s : expired) {
      expired_.fetch_add(1, std::memory_order_relaxed);
      Response resp;
      resp.id = s.req.id;
      resp.status = WireStatus::kDeadlineExceeded;
      s.session->Deliver(std::move(resp));
    }
    if (got == 0) {
      if (queue_->closed() && queue_->depth() == 0) return;
      continue;
    }
    DispatchBatch(&batch);
    // Adapt: popped + remaining backlog estimates the work that arrived
    // during one batch service time.
    if (opts_.fixed_batch == 0) {
      const double observed = static_cast<double>(got + queue_->depth());
      load_ewma = 0.75 * load_ewma + 0.25 * observed;
      target = std::clamp(static_cast<size_t>(std::lround(load_ewma)),
                          size_t{1}, opts_.max_batch);
    }
    target_now_.store(target, std::memory_order_relaxed);
  }
}

void Dispatcher::DispatchBatch(std::vector<Submission>* batch_ptr) {
  std::vector<Submission>& batch = *batch_ptr;
  const size_t n = batch.size();
  batches_.fetch_add(1, std::memory_order_relaxed);
  batch_size_sum_.fetch_add(n, std::memory_order_relaxed);
  uint64_t prev_max = max_batch_seen_.load(std::memory_order_relaxed);
  while (n > prev_max &&
         !max_batch_seen_.compare_exchange_weak(prev_max, n)) {
  }

  std::vector<Response> responses(n);
  // Partition: queries fan through the QueryExecutor, update ops flatten
  // across every kUpdateBatch request into one UpdateExecutor epoch,
  // pings and invalid requests answer inline.
  struct OpRef {
    size_t sub;  // index into batch/responses
    size_t op;   // index into that request's updates
  };
  std::vector<size_t> query_idx;
  std::vector<OpRef> ops;
  for (size_t i = 0; i < n; ++i) {
    const Request& req = batch[i].req;
    Response& resp = responses[i];
    resp.id = req.id;
    switch (req.type) {
      case RequestType::kPing:
        pings_.fetch_add(1, std::memory_order_relaxed);
        break;
      case RequestType::kUpdateBatch:
        if (tables_.btree == nullptr) {
          resp.status = WireStatus::kBadRequest;
          bad_requests_.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        resp.update_status.assign(req.updates.size(),
                                  static_cast<uint8_t>(WireStatus::kOk));
        for (size_t j = 0; j < req.updates.size(); ++j) {
          ops.push_back({i, j});
        }
        break;
      case RequestType::kMetablockDiagonal:
        if (tables_.metablock == nullptr) {
          resp.status = WireStatus::kBadRequest;
          bad_requests_.fetch_add(1, std::memory_order_relaxed);
        } else {
          query_idx.push_back(i);
        }
        break;
      case RequestType::kBtreeRange:
        if (tables_.btree == nullptr) {
          resp.status = WireStatus::kBadRequest;
          bad_requests_.fetch_add(1, std::memory_order_relaxed);
        } else {
          query_idx.push_back(i);
        }
        break;
      case RequestType::kIntervalStab:
        if (tables_.interval == nullptr) {
          resp.status = WireStatus::kBadRequest;
          bad_requests_.fetch_add(1, std::memory_order_relaxed);
        } else {
          query_idx.push_back(i);
        }
        break;
      case RequestType::kThreeSided:
        if (tables_.three_sided == nullptr) {
          resp.status = WireStatus::kBadRequest;
          bad_requests_.fetch_add(1, std::memory_order_relaxed);
        } else {
          query_idx.push_back(i);
        }
        break;
    }
  }

  // Updates first (one write epoch), so a pipelined update-then-query
  // pair landing in the same batch reads its own write.
  if (!ops.empty()) {
    update_ops_.fetch_add(ops.size(), std::memory_order_relaxed);
    auto report = update_exec_->RunUpdates(
        std::span<const OpRef>(ops),
        [&](const OpRef& o) { return batch[o.sub].req.updates[o.op].key; },
        [&](const OpRef& o, size_t, unsigned) -> Status {
          const UpdateOp& u = batch[o.sub].req.updates[o.op];
          if (u.kind == UpdateOp::Kind::kInsert) {
            return tables_.btree->Insert(u.key, u.value, u.aux);
          }
          bool found = false;
          return tables_.btree->Delete(u.key, u.value, &found);
        },
        query_exec_->gate(), tables_.pager);
    for (size_t k = 0; k < ops.size(); ++k) {
      Response& resp = responses[ops[k].sub];
      if (report.statuses[k].ok()) {
        ++resp.count;  // ops applied OK
      } else {
        resp.update_status[ops[k].op] =
            static_cast<uint8_t>(WireStatus::kError);
        resp.status = WireStatus::kError;
      }
    }
  }

  if (!query_idx.empty()) {
    queries_.fetch_add(query_idx.size(), std::memory_order_relaxed);
    query_exec_->RunBatch(
        std::span<const size_t>(query_idx),
        [&](size_t sub, size_t, unsigned) {
          return RunOne(batch[sub], &responses[sub]);
        },
        tables_.pager);
  }

  for (size_t i = 0; i < n; ++i) {
    batch[i].session->Deliver(std::move(responses[i]));
  }
  const auto done = std::chrono::steady_clock::now();
  std::lock_guard lock(lat_mu_);
  for (size_t i = 0; i < n; ++i) {
    accept_latency_us_.push_back(
        std::chrono::duration<double, std::micro>(done -
                                                  batch[i].admit_time)
            .count());
  }
}

Status Dispatcher::RunOne(const Submission& s, Response* resp) const {
  const Request& req = s.req;
  Status st = Status::OK();
  switch (req.type) {
    case RequestType::kMetablockDiagonal:
      st = RunWithMode<Point>(req, resp, [&](ResultSink<Point>* sink) {
        return tables_.metablock->Query(DiagonalQuery{req.args[0]}, sink);
      });
      break;
    case RequestType::kBtreeRange:
      st = RunWithMode<BtEntry>(req, resp, [&](ResultSink<BtEntry>* sink) {
        return tables_.btree->RangeScan(req.args[0], req.args[1], sink);
      });
      break;
    case RequestType::kIntervalStab:
      st = RunWithMode<Interval>(req, resp, [&](ResultSink<Interval>* sink) {
        return tables_.interval->Stab(req.args[0], sink);
      });
      break;
    case RequestType::kThreeSided:
      st = RunWithMode<Point>(req, resp, [&](ResultSink<Point>* sink) {
        return tables_.three_sided->Query(
            ThreeSidedQuery{req.args[0], req.args[1], req.args[2]}, sink);
      });
      break;
    default:
      st = Status::InvalidArgument("not a query type");
      break;
  }
  if (!st.ok()) resp->status = WireStatus::kError;
  return st;
}

}  // namespace serve
}  // namespace ccidx
