// Wire protocol for the serving front-end (DESIGN.md §12).
//
// Every message is one length-prefixed binary frame:
//
//   [magic u32 = 0x43435251 "CCRQ"] [version u8] [kind u8] [flags u16]
//   [payload_len u32] [payload ...]
//
// The payload is a Request or a Response (kind distinguishes them),
// encoded little-endian with fixed-width fields (codec.h). Frames are
// self-delimiting, so a byte stream (TCP) reassembles with no lookahead
// beyond the 12-byte header, and a datagram-ish transport (loopback)
// passes one frame per call. All integers little-endian; records are
// fixed 24-byte triples, so a response's record count is implied by its
// payload length and cross-checked by the codec.
//
// Request descriptors cover the engine's serving families (the paper's
// query shapes): metablock diagonal corner queries, B+-tree range scans,
// interval stabbing, 3-sided range reporting — each in full-report,
// count, exists and top-k (limit) result modes — plus batched updates
// (B+-tree insert/delete ops applied through UpdateExecutor under one
// write epoch). Requests carry a per-session id (monotone from 1; the
// session delivers responses in id order) and a relative deadline in
// microseconds (0 = none) that the queue enforces at dequeue.

#ifndef CCIDX_SERVE_FRAME_H_
#define CCIDX_SERVE_FRAME_H_

#include <array>
#include <cstdint>
#include <vector>

namespace ccidx {
namespace serve {

inline constexpr uint32_t kFrameMagic = 0x43435251u;  // "CCRQ"
inline constexpr uint8_t kWireVersion = 1;
/// Header bytes before the payload: magic, version, kind, flags, length.
inline constexpr size_t kFrameHeaderBytes = 12;
/// Hard ceiling on one frame's payload; a decoder rejects larger lengths
/// before allocating (a corrupt length field must not OOM the server).
inline constexpr uint32_t kMaxPayloadBytes = 1u << 26;  // 64 MiB

enum class MessageKind : uint8_t {
  kRequest = 1,
  kResponse = 2,
};

/// Query / update family selector.
enum class RequestType : uint8_t {
  kPing = 0,              // liveness; responds kOk with count = 0
  kMetablockDiagonal = 1, // DiagonalQuery{a}           -> Point records
  kBtreeRange = 2,        // RangeScan[arg0, arg1]      -> BtEntry records
  kIntervalStab = 3,      // Stab(arg0)                 -> Interval records
  kThreeSided = 4,        // {xlo=arg0,xhi=arg1,ylo=arg2} -> Point records
  kUpdateBatch = 5,       // ops applied to the B+-tree under a write epoch
};
inline constexpr uint8_t kMaxRequestType =
    static_cast<uint8_t>(RequestType::kUpdateBatch);

/// How a query's result stream is materialized (PR 2 sinks): the serving
/// dual of VectorSink / CountSink / ExistsSink / LimitSink.
enum class ResultMode : uint8_t {
  kRecords = 0,  // full reporting
  kCount = 1,    // count only (response.count)
  kExists = 2,   // 0/1 in response.count; O(log_B n) early-stop
  kLimit = 3,    // first `limit` records (top-k early-stop)
};
inline constexpr uint8_t kMaxResultMode =
    static_cast<uint8_t>(ResultMode::kLimit);

/// Response status on the wire. Distinct from ccidx::Status: admission
/// outcomes (kOverloaded, kDeadlineExceeded, kNoCredit) are serving-layer
/// verdicts that never reach the engine.
enum class WireStatus : uint8_t {
  kOk = 0,
  kOverloaded = 1,        // shed at the submission queue's high watermark
  kDeadlineExceeded = 2,  // expired before dispatch; dropped at dequeue
  kNoCredit = 3,          // session's flow-control window exhausted
  kBadRequest = 4,        // malformed frame / unknown type / bad operands
  kError = 5,             // engine Status failure during execution
};

/// One update operation inside a kUpdateBatch request.
struct UpdateOp {
  enum class Kind : uint8_t { kInsert = 0, kDelete = 1 };
  Kind kind = Kind::kInsert;
  int64_t key = 0;
  uint64_t value = 0;
  int64_t aux = 0;

  bool operator==(const UpdateOp&) const = default;
};

/// A decoded request. `args` are the family operands (see RequestType);
/// unused slots are 0 on the wire.
struct Request {
  uint64_t id = 0;  // per-session sequence, monotone from 1
  RequestType type = RequestType::kPing;
  ResultMode mode = ResultMode::kRecords;
  uint32_t limit = 0;        // for ResultMode::kLimit
  uint32_t deadline_us = 0;  // relative to admission; 0 = none
  std::array<int64_t, 3> args{0, 0, 0};
  std::vector<UpdateOp> updates;  // kUpdateBatch only

  bool operator==(const Request&) const = default;
};

/// A decoded response. Records are 24-byte triples whose meaning follows
/// the request family: Point{x,y,id}, BtEntry{key,value,aux} or
/// Interval{lo,hi,id} — three 64-bit words either way, so one response
/// shape serves every family bit-exactly. For kUpdateBatch,
/// `update_status` carries one WireStatus per op (kOk / kError) and
/// `count` the number applied OK; for kCount/kExists, `count` is the
/// answer; for kRecords/kLimit, count == records.size().
struct Response {
  uint64_t id = 0;
  WireStatus status = WireStatus::kOk;
  uint64_t count = 0;
  std::vector<std::array<uint64_t, 3>> records;
  std::vector<uint8_t> update_status;

  bool operator==(const Response&) const = default;
};

}  // namespace serve
}  // namespace ccidx

#endif  // CCIDX_SERVE_FRAME_H_
