// The serving catalog and tuning knobs shared by the server and the
// dispatcher (DESIGN.md §12).

#ifndef CCIDX_SERVE_CATALOG_H_
#define CCIDX_SERVE_CATALOG_H_

#include <chrono>
#include <cstddef>
#include <cstdint>

#include "ccidx/bptree/bptree.h"
#include "ccidx/core/metablock_tree.h"
#include "ccidx/core/three_sided_tree.h"
#include "ccidx/interval/interval_index.h"
#include "ccidx/io/pager.h"

namespace ccidx {
namespace serve {

/// The structures a server instance serves. Any pointer may be null —
/// requests against an absent family answer kBadRequest. Queries run
/// through the families' const, reads-concurrent paths; updates target
/// the B+-tree's in-epoch N-writer Insert/Delete (§11). The caller keeps
/// the structures and pager alive for the server's lifetime, and must
/// not mutate them outside the server's epoch gate while it is running.
struct ServeTables {
  Pager* pager = nullptr;
  const MetablockTree* metablock = nullptr;
  BPlusTree* btree = nullptr;
  const IntervalIndex* interval = nullptr;
  const ThreeSidedTree* three_sided = nullptr;
};

/// Server tuning. Defaults serve a small-to-medium deployment; the load
/// driver sweeps these.
struct ServerOptions {
  /// Submission queue ring capacity.
  size_t queue_capacity = 1024;
  /// Busy threshold: at/above this depth the admission controller drops
  /// Pager::speculation_budget() to 0 (demand I/O first).
  size_t low_watermark = 64;
  /// Shed threshold: at/above this depth new requests answer kOverloaded.
  size_t high_watermark = 512;
  /// Reader workers in the QueryExecutor (0 = hardware concurrency).
  unsigned query_threads = 4;
  /// Writer workers in the UpdateExecutor.
  unsigned update_threads = 2;
  /// Adaptive batch-formation cap: the dispatcher never forms a larger
  /// batch than this, whatever the backlog.
  size_t max_batch = 256;
  /// Nonzero pins batch formation to exactly this size (no adaptation) —
  /// the load driver's batch-size-1 comparison leg.
  size_t fixed_batch = 0;
  /// How long PopBatch blocks for the *first* submission. Batch growth
  /// past the first never waits: at low load a request dispatches alone
  /// immediately (latency), at high load the backlog fills the batch
  /// (throughput) — waiting is the one thing adaptive formation must
  /// never add at low load.
  std::chrono::nanoseconds batch_wait{2'000'000};  // 2 ms idle poll
  /// Flow-control window per session (concurrent requests).
  uint32_t session_credits = 1u << 16;
};

}  // namespace serve
}  // namespace ccidx

#endif  // CCIDX_SERVE_CATALOG_H_
