// In-process loopback transport (DESIGN.md §12): the client side of the
// wire protocol with no socket underneath. Requests are encoded to real
// frames, handed to Server::OnFrame, and responses come back through the
// session writer as encoded frames into a client-side inbox — so tests
// and CI exercise the full codec + admission + dispatch + ordering path
// with no network, and a differential test can compare its answers
// bit-for-bit against direct RunBatch calls.
//
// One LoopbackConnection is one session (one request-id sequence, one
// credit window). A load driver multiplexes thousands of connections
// over a few threads via TryReceive — the "millions of users" shape with
// none of the socket cost.

#ifndef CCIDX_SERVE_TRANSPORT_H_
#define CCIDX_SERVE_TRANSPORT_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "ccidx/common/status.h"
#include "ccidx/serve/codec.h"
#include "ccidx/serve/frame.h"
#include "ccidx/serve/server.h"

namespace ccidx {
namespace serve {

class LoopbackConnection {
 public:
  /// Opens a session on `server` (which must outlive the connection).
  explicit LoopbackConnection(Server* server) : server_(server) {
    session_ = server->OpenSession([this](std::span<const uint8_t> bytes) {
      Response resp;
      // The server encoded this frame; decoding cannot fail unless the
      // codec itself is broken, which the tests pin.
      Status st = DecodeResponse(bytes, &resp);
      std::lock_guard lock(mu_);
      if (st.ok()) {
        inbox_.push_back(std::move(resp));
      } else {
        ++decode_errors_;
      }
      cv_.notify_one();
    });
  }

  LoopbackConnection(const LoopbackConnection&) = delete;
  LoopbackConnection& operator=(const LoopbackConnection&) = delete;

  /// Assigns the next request id, encodes, and submits. Returns the id.
  /// Thread-compatible (one sender per connection, like one socket).
  uint64_t Send(Request req) {
    req.id = next_id_++;
    encode_buf_.clear();
    EncodeRequest(req, &encode_buf_);
    server_->OnFrame(session_, encode_buf_);
    return req.id;
  }

  /// Blocks for the next in-order response.
  Response Receive() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [this] { return !inbox_.empty(); });
    Response r = std::move(inbox_.front());
    inbox_.pop_front();
    return r;
  }

  /// Non-blocking receive; false when the inbox is empty.
  bool TryReceive(Response* out) {
    std::lock_guard lock(mu_);
    if (inbox_.empty()) return false;
    *out = std::move(inbox_.front());
    inbox_.pop_front();
    return true;
  }

  /// Send + Receive. With no pipelining in flight, the received response
  /// is this request's (ordered delivery).
  Response Call(Request req) {
    Send(std::move(req));
    return Receive();
  }

  Session* session() { return session_; }
  uint64_t decode_errors() const {
    std::lock_guard lock(mu_);
    return decode_errors_;
  }

 private:
  Server* const server_;
  Session* session_ = nullptr;
  uint64_t next_id_ = 1;            // sender-side sequence
  std::vector<uint8_t> encode_buf_;  // sender-side scratch

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Response> inbox_;  // guarded by mu_
  uint64_t decode_errors_ = 0;  // guarded by mu_
};

}  // namespace serve
}  // namespace ccidx

#endif  // CCIDX_SERVE_TRANSPORT_H_
